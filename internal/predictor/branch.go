package predictor

// Branch is a gshare/bimodal hybrid direction predictor standing in
// for the paper's TAGE-SC-L. Only the direction (and hence the
// mispredict-redirect rate) affects the trace-driven core, so the
// hybrid's accuracy profile is what matters, not tag geometry.
type Branch struct {
	gshare  []uint8 // 2-bit counters
	bimodal []uint8 // 2-bit counters
	chooser []uint8 // 2-bit: >=2 prefers gshare
	history uint64
	mask    uint64

	lookups    uint64
	mispredict uint64
}

// NewBranch builds a predictor with 2^logSize counters per table.
func NewBranch(logSize uint) *Branch {
	n := 1 << logSize
	b := &Branch{
		gshare:  make([]uint8, n),
		bimodal: make([]uint8, n),
		chooser: make([]uint8, n),
		mask:    uint64(n - 1),
	}
	for i := range b.chooser {
		b.chooser[i] = 1 // weakly prefer bimodal (gshare must earn it)
		// Boot weakly taken: real branch streams are taken-dominated,
		// and static sites may execute only a handful of times.
		b.gshare[i] = 2
		b.bimodal[i] = 2
	}
	return b
}

func (b *Branch) gIndex(pc uint64) uint64 { return ((pc >> 2) ^ b.history) & b.mask }
func (b *Branch) bIndex(pc uint64) uint64 { return (pc >> 2) & b.mask }

// PredictAndTrain looks up the direction for pc, immediately trains
// with the actual outcome (the trace knows it), updates history and
// reports whether the prediction was wrong — i.e. whether the core
// must pay a redirect.
func (b *Branch) PredictAndTrain(pc uint64, taken bool) (mispredicted bool) {
	gi, bi := b.gIndex(pc), b.bIndex(pc)
	gPred := b.gshare[gi] >= 2
	bPred := b.bimodal[bi] >= 2
	useG := b.chooser[bi] >= 2
	pred := bPred
	if useG {
		pred = gPred
	}
	b.lookups++
	mispredicted = pred != taken

	// Train the chooser toward whichever component was right.
	if gPred != bPred {
		if gPred == taken {
			if b.chooser[bi] < 3 {
				b.chooser[bi]++
			}
		} else if b.chooser[bi] > 0 {
			b.chooser[bi]--
		}
	}
	upd := func(c *uint8) {
		if taken {
			if *c < 3 {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
	}
	upd(&b.gshare[gi])
	upd(&b.bimodal[bi])

	b.history = (b.history << 1) & b.mask
	if taken {
		b.history |= 1
	}
	if mispredicted {
		b.mispredict++
	}
	return mispredicted
}

// MispredictRate returns mispredictions per lookup.
func (b *Branch) MispredictRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.mispredict) / float64(b.lookups)
}
