package predictor

import (
	"testing"
	"testing/quick"

	"rowsim/internal/config"
)

func newContention(kind config.PredictorKind) *Contention {
	cfg := config.Default()
	cfg.RoW.Predictor = kind
	return NewContention(cfg)
}

func TestUpDownWarmsToContended(t *testing.T) {
	p := newContention(config.PredUpDown)
	pc := uint64(0x400040)
	if p.Predict(pc) {
		t.Fatal("fresh predictor must predict non-contended")
	}
	// Threshold is 1 for UpDown: two contended outcomes flip it.
	p.Train(pc, false, true)
	p.Train(pc, false, true)
	if !p.Predict(pc) {
		t.Fatal("did not learn contention after two events")
	}
	// Two quiet outcomes flip it back.
	p.Train(pc, true, false)
	p.Train(pc, true, false)
	if p.Predict(pc) {
		t.Fatal("did not unlearn contention")
	}
}

func TestSaturateJumpsOnFirstContention(t *testing.T) {
	p := newContention(config.PredSaturate)
	pc := uint64(0x400080)
	p.Train(pc, false, true) // one event saturates the counter
	if !p.Predict(pc) {
		t.Fatal("Saturate must predict contended after one event")
	}
	// It takes 15 consecutive quiet outcomes to fall back below the
	// threshold of 0 (the paper's point about its stickiness).
	for i := 0; i < 14; i++ {
		p.Train(pc, true, false)
		if !p.Predict(pc) {
			t.Fatalf("Saturate dropped after only %d quiet outcomes", i+1)
		}
	}
	p.Train(pc, true, false)
	if p.Predict(pc) {
		t.Fatal("Saturate never unlearned after 15 quiet outcomes")
	}
}

func TestTwoUpOneDown(t *testing.T) {
	p := newContention(config.PredTwoUpOneDown)
	pc := uint64(0x4000C0)
	p.Train(pc, false, true) // counter 2 > threshold 1
	if !p.Predict(pc) {
		t.Fatal("+2/-1 must predict contended after one event")
	}
	p.Train(pc, true, false) // counter 1
	if p.Predict(pc) {
		t.Fatal("+2/-1 did not decay")
	}
}

func TestAliasingDistinctEntries(t *testing.T) {
	// Two PCs mapping to different entries do not interfere.
	p := newContention(config.PredUpDown)
	hot, cold := uint64(0x400000+4), uint64(0x400000+8)
	for i := 0; i < 4; i++ {
		p.Train(hot, false, true)
	}
	if !p.Predict(hot) {
		t.Fatal("hot site not learned")
	}
	if p.Predict(cold) {
		t.Fatal("cold site aliased with hot site")
	}
}

func TestSingleEntryAliases(t *testing.T) {
	cfg := config.Default()
	cfg.RoW.PredictorEntries = 1
	p := NewContention(cfg)
	hot, cold := uint64(0x400004), uint64(0x400008)
	for i := 0; i < 4; i++ {
		p.Train(hot, false, true)
	}
	if !p.Predict(cold) {
		t.Fatal("a 1-entry table must alias every site")
	}
}

func TestAccuracyTracking(t *testing.T) {
	p := newContention(config.PredUpDown)
	pc := uint64(0x400010)
	pred := p.Predict(pc)
	p.Train(pc, pred, pred) // matches: correct
	pred2 := p.Predict(pc)
	p.Train(pc, pred2, !pred2) // mismatch
	if got := p.Accuracy(); got != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", got)
	}
	if p.Predictions() != 2 {
		t.Fatalf("predictions = %d, want 2", p.Predictions())
	}
}

func TestStorageBits(t *testing.T) {
	p := newContention(config.PredUpDown)
	if got := p.StorageBits(); got != 64*4 {
		t.Fatalf("storage = %d bits, want 256", got)
	}
}

func TestCounterBoundsQuick(t *testing.T) {
	// Counters never exceed 2^N-1 or underflow regardless of the
	// training sequence; Predict never panics.
	f := func(seed uint64, outcomes []bool) bool {
		p := newContention(config.PredSaturate)
		pc := seed % 1024 * 4
		for _, o := range outcomes {
			pred := p.Predict(pc)
			p.Train(pc, pred, o)
			for _, c := range p.counters {
				if c > p.max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSetLoadWaits(t *testing.T) {
	ss := NewStoreSet(10)
	loadPC, storePC := uint64(0x500000), uint64(0x500100)
	// Before any violation, loads are unconstrained.
	if ss.DispatchLoad(loadPC) != 0 {
		t.Fatal("untrained load constrained")
	}
	ss.Violation(loadPC, storePC)
	if ss.Violations() != 1 {
		t.Fatal("violation not counted")
	}
	// The store registers in the LFST; the load must now wait for it.
	ss.DispatchStore(storePC, 42)
	if got := ss.DispatchLoad(loadPC); got != 42 {
		t.Fatalf("load waits for %d, want 42", got)
	}
	// Once the store completes, the constraint lifts.
	ss.CompleteStore(storePC, 42)
	if got := ss.DispatchLoad(loadPC); got != 0 {
		t.Fatalf("load still waits for %d after completion", got)
	}
}

func TestStoreSetStoreOrdering(t *testing.T) {
	ss := NewStoreSet(10)
	loadPC, s1, s2 := uint64(0x600000), uint64(0x600100), uint64(0x600200)
	ss.Violation(loadPC, s1)
	ss.Violation(loadPC, s2) // merges s2 into the same set
	ss.DispatchStore(s1, 10)
	waitFor := ss.DispatchStore(s2, 20)
	if waitFor != 10 {
		t.Fatalf("in-set store waits for %d, want 10", waitFor)
	}
	if got := ss.DispatchLoad(loadPC); got != 20 {
		t.Fatalf("load waits for %d, want the youngest store 20", got)
	}
}

func TestStoreSetMergeTowardSmaller(t *testing.T) {
	ss := NewStoreSet(10)
	l1, s1 := uint64(0x700000), uint64(0x700100)
	l2, s2 := uint64(0x700200), uint64(0x700300)
	ss.Violation(l1, s1) // set A
	ss.Violation(l2, s2) // set B
	ss.Violation(l1, s2) // merge: all four PCs end up related
	ss.DispatchStore(s2, 99)
	if got := ss.DispatchLoad(l1); got != 99 {
		t.Fatalf("merged sets broken: load waits for %d, want 99", got)
	}
}

func TestStoreSetCompleteOnlyClearsOwnEntry(t *testing.T) {
	ss := NewStoreSet(10)
	loadPC, storePC := uint64(0x800000), uint64(0x800100)
	ss.Violation(loadPC, storePC)
	ss.DispatchStore(storePC, 5)
	ss.DispatchStore(storePC, 6) // newer instance
	ss.CompleteStore(storePC, 5) // completing the old one
	if got := ss.DispatchLoad(loadPC); got != 6 {
		t.Fatalf("stale completion cleared the LFST: got %d, want 6", got)
	}
}
