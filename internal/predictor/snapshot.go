package predictor

// Snapshot/Restore for the three predictor tables. A snapshot is a
// deep copy of every field that evolves during a run; construction-time
// geometry (table masks, counter widths, thresholds, predictor kind)
// is derived from the configuration when the predictor is rebuilt and
// deliberately excluded — restoring a snapshot into a predictor built
// from a different configuration is a caller bug the sizes make loudly
// visible.

// BranchSnap is the serializable state of a Branch predictor.
type BranchSnap struct {
	GShare     []uint8 `json:"gshare"`
	Bimodal    []uint8 `json:"bimodal"`
	Chooser    []uint8 `json:"chooser"`
	History    uint64  `json:"history"`
	Lookups    uint64  `json:"lookups"`
	Mispredict uint64  `json:"mispredict"`
}

// Snapshot deep-copies the branch predictor's mutable state.
func (b *Branch) Snapshot() BranchSnap {
	return BranchSnap{
		GShare:     append([]uint8(nil), b.gshare...),
		Bimodal:    append([]uint8(nil), b.bimodal...),
		Chooser:    append([]uint8(nil), b.chooser...),
		History:    b.history,
		Lookups:    b.lookups,
		Mispredict: b.mispredict,
	}
}

// Restore overwrites the predictor's mutable state from a snapshot
// taken from an identically sized predictor.
func (b *Branch) Restore(s BranchSnap) {
	copy(b.gshare, s.GShare)
	copy(b.bimodal, s.Bimodal)
	copy(b.chooser, s.Chooser)
	b.history = s.History
	b.lookups = s.Lookups
	b.mispredict = s.Mispredict
}

// StoreSetSnap is the serializable state of a StoreSet predictor.
type StoreSetSnap struct {
	SSIT       []int32  `json:"ssit"`
	LFST       []uint64 `json:"lfst"`
	NextID     int32    `json:"next_id"`
	Violations uint64   `json:"violations"`
}

// Snapshot deep-copies the store-set predictor's mutable state.
func (s *StoreSet) Snapshot() StoreSetSnap {
	return StoreSetSnap{
		SSIT:       append([]int32(nil), s.ssit...),
		LFST:       append([]uint64(nil), s.lfst...),
		NextID:     s.nextID,
		Violations: s.violations,
	}
}

// Restore overwrites the predictor's mutable state from a snapshot
// taken from an identically sized predictor.
func (s *StoreSet) Restore(snap StoreSetSnap) {
	copy(s.ssit, snap.SSIT)
	copy(s.lfst, snap.LFST)
	s.nextID = snap.NextID
	s.violations = snap.Violations
}

// ContentionSnap is the serializable state of a Contention predictor.
type ContentionSnap struct {
	Counters      []uint16 `json:"counters"`
	Predictions   uint64   `json:"predictions"`
	Correct       uint64   `json:"correct"`
	PredContended uint64   `json:"pred_contended"`
}

// Snapshot deep-copies the contention predictor's mutable state.
func (p *Contention) Snapshot() ContentionSnap {
	return ContentionSnap{
		Counters:      append([]uint16(nil), p.counters...),
		Predictions:   p.predictions,
		Correct:       p.correct,
		PredContended: p.predContended,
	}
}

// Restore overwrites the predictor's mutable state from a snapshot
// taken from an identically configured predictor.
func (p *Contention) Restore(s ContentionSnap) {
	copy(p.counters, s.Counters)
	p.predictions = s.Predictions
	p.correct = s.Correct
	p.predContended = s.PredContended
}
