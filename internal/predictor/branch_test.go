package predictor

import (
	"testing"

	"rowsim/internal/xrand"
)

// TestBranchBiasedConverges checks that a strongly biased branch is
// predicted correctly after warm-up.
func TestBranchBiasedConverges(t *testing.T) {
	b := NewBranch(12)
	rng := xrand.New(7)
	var wrong int
	const n = 10000
	for i := 0; i < n; i++ {
		taken := rng.Bool(0.97)
		if b.PredictAndTrain(0x400100, taken) {
			wrong++
		}
	}
	if rate := float64(wrong) / n; rate > 0.10 {
		t.Fatalf("biased branch mispredict rate %.2f, want <= 0.10", rate)
	}
}

// TestBranchAlternatingPattern checks that gshare captures a strict
// alternation, which bimodal alone cannot.
func TestBranchAlternatingPattern(t *testing.T) {
	b := NewBranch(12)
	var wrong int
	const n = 4000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if b.PredictAndTrain(0x400200, taken) {
			wrong++
		}
	}
	if rate := float64(wrong) / n; rate > 0.10 {
		t.Fatalf("alternating branch mispredict rate %.2f, want <= 0.10", rate)
	}
}

// TestBranchMixedSites models the workload generator's branch
// population: mostly biased sites plus some random ones, interleaved.
func TestBranchMixedSites(t *testing.T) {
	b := NewBranch(12)
	rng := xrand.New(99)
	type siteT struct {
		pc   uint64
		bias float64
	}
	var sites []siteT
	for i := 0; i < 200; i++ {
		bias := 0.97
		if i%12 == 0 {
			bias = 0.5
		}
		sites = append(sites, siteT{pc: 0x400000 + uint64(i)*4, bias: bias})
	}
	var wrong, total int
	for sweep := 0; sweep < 100; sweep++ {
		for _, s := range sites {
			taken := rng.Bool(s.bias)
			if b.PredictAndTrain(s.pc, taken) {
				wrong++
			}
			total++
		}
	}
	rate := float64(wrong) / float64(total)
	// ~1/12 of sites are coin flips: floor is about 4-5% plus noise
	// from history pollution.
	if rate > 0.15 {
		t.Fatalf("mixed-site mispredict rate %.2f, want <= 0.15", rate)
	}
	t.Logf("mixed-site mispredict rate: %.3f", rate)
}

// TestBranchRateAccounting checks the reported rate matches the
// returned mispredictions.
func TestBranchRateAccounting(t *testing.T) {
	b := NewBranch(10)
	var wrong int
	for i := 0; i < 100; i++ {
		if b.PredictAndTrain(4, i%3 == 0) {
			wrong++
		}
	}
	want := float64(wrong) / 100
	if got := b.MispredictRate(); got != want {
		t.Fatalf("MispredictRate = %v, want %v", got, want)
	}
}
