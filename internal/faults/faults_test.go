package faults

import (
	"testing"

	"rowsim/internal/coherence"
)

func TestSpecRoundTrip(t *testing.T) {
	cases := []Config{
		{},
		{Seed: 42, JitterProb: 0.2, JitterMax: 12},
		{Seed: 0xdeadbeef, ReorderProb: 0.05, ReorderMax: 64},
		{JitterProb: 0.25, JitterMax: 12, ReorderProb: 0.05, ReorderMax: 64},
		{DupProb: 0.01, DropProb: 0.02},
		{Seed: 1, JitterProb: 1, JitterMax: 8, ReorderProb: 0.5, ReorderMax: 128, DupProb: 0.25, DropProb: 0.125},
	}
	for _, c := range cases {
		spec := c.Spec()
		got, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got != c {
			t.Errorf("round trip %q: got %+v, want %+v", spec, got, c)
		}
	}
}

func TestParseSpecNone(t *testing.T) {
	for _, s := range []string{"", "none", "  none  "} {
		c, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if c.Enabled() {
			t.Errorf("ParseSpec(%q) enabled: %+v", s, c)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"jitter",          // no value
		"warp=0.5",        // unknown key
		"jitter=1.5",      // probability out of range
		"drop=-0.1",       // negative probability
		"seed=zz",         // unparseable seed
		"jitter=0.5:nope", // unparseable max
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q): expected error", s)
		}
	}
}

func TestLegal(t *testing.T) {
	if !(Config{JitterProb: 0.5, ReorderProb: 0.5}).Legal() {
		t.Error("jitter+reorder should be legal")
	}
	if (Config{DupProb: 0.01}).Legal() {
		t.Error("duplication should be illegal")
	}
	if (Config{DropProb: 0.01}).Legal() {
		t.Error("drops should be illegal")
	}
}

// TestInjectorDeterminism is the property repro lines rely on: the same
// seed produces the same perturbation sequence.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, JitterProb: 0.5, JitterMax: 16, ReorderProb: 0.2, ReorderMax: 64}
	a, b := New(cfg), New(cfg)
	m := &coherence.Msg{}
	for i := 0; i < 10_000; i++ {
		da := append([]uint64(nil), a.Perturb(m)...)
		db := append([]uint64(nil), b.Perturb(m)...)
		if len(da) != len(db) {
			t.Fatalf("call %d: lengths differ: %v vs %v", i, da, db)
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("call %d: delays differ: %v vs %v", i, da, db)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Jittered == 0 || a.Stats().Reordered == 0 {
		t.Fatalf("expected jitter and reorder activity, got %+v", a.Stats())
	}
}

func TestInjectorDropAndDup(t *testing.T) {
	m := &coherence.Msg{}
	drop := New(Config{DropProb: 1})
	if got := drop.Perturb(m); len(got) != 0 {
		t.Fatalf("DropProb=1 delivered: %v", got)
	}
	dup := New(Config{DupProb: 1})
	got := dup.Perturb(m)
	if len(got) != 2 {
		t.Fatalf("DupProb=1 produced %v, want 2 deliveries", got)
	}
	if got[1] <= got[0] {
		t.Fatalf("duplicate must arrive after the original: %v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	in := New(Config{JitterProb: 0.5, ReorderProb: 0.5})
	if in.Config().JitterMax == 0 || in.Config().ReorderMax == 0 {
		t.Fatalf("magnitude defaults missing: %+v", in.Config())
	}
}
