package faults

import (
	"testing"

	"rowsim/internal/snapcheck"
)

// TestSnapshotCoversEveryField is the snapshot-completeness guard for
// the fault injector: the PRNG stream position is the state that makes
// a resumed faulty run take exactly the decisions the uninterrupted
// run would have.
func TestSnapshotCoversEveryField(t *testing.T) {
	snapcheck.Assert(t, Injector{}, []string{
		"rng",   // serialized as RNGState
		"stats", // decision counters reach the final Result
	}, map[string]string{
		"cfg": "construction-time configuration, part of the checkpoint content key",
		"buf": "per-call scratch; never carries state across deliveries",
	})
}
