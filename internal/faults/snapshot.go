package faults

// InjectorSnap is the serializable mid-run state of an Injector: the
// PRNG position and the decision counters. Perturb consumes one
// deterministic RNG decision sequence per delivery, so restoring the
// stream state is what makes a resumed faulty run take exactly the
// jitter/reorder decisions the uninterrupted run would have taken.
// The configuration is construction-time state (part of the checkpoint
// content key, not the snapshot); buf is per-call scratch that never
// carries state across deliveries.
type InjectorSnap struct {
	RNGState uint64 `json:"rng_state"`
	Stats    Stats  `json:"stats"`
}

// Snapshot captures the injector's mutable state. A nil injector (no
// faults installed) snapshots to the zero value.
func (in *Injector) Snapshot() InjectorSnap {
	if in == nil {
		return InjectorSnap{}
	}
	return InjectorSnap{RNGState: in.rng.State(), Stats: in.stats}
}

// Restore overwrites the injector's mutable state. A nil injector
// ignores the call (the zero snapshot round-trips).
func (in *Injector) Restore(s InjectorSnap) {
	if in == nil {
		return
	}
	in.rng.SetState(s.RNGState)
	in.stats = s.Stats
}
