// Package faults implements a deterministic, seeded fault injector for
// the mesh interconnect. It perturbs message delivery with per-message
// delay jitter and reordering — legal timing variations the MESI
// directory must tolerate — plus duplication and drop modes that are
// *illegal* for this protocol and exist to exercise the failure
// detection machinery (structured protocol errors, the watchdog and
// the deadlock diagnoser).
//
// Everything is driven by a SplitMix64 stream seeded from Config.Seed,
// consumed once per sent message in simulation order, so a fault
// configuration plus a seed reproduces the exact same perturbation —
// the property the torture harness's one-line reproductions rely on.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"rowsim/internal/coherence"
	"rowsim/internal/xrand"
)

// Config selects the fault mix. Probabilities are per message, in
// [0,1]. The zero value injects nothing.
type Config struct {
	// Seed seeds the injector's PRNG stream (0 is a valid seed).
	Seed uint64

	// JitterProb adds 1..JitterMax extra delivery cycles to a message.
	// Per-channel FIFO order is preserved by the mesh, so jitter is a
	// legal timing the protocol must absorb.
	JitterProb float64
	JitterMax  uint64

	// ReorderProb holds a message back by JitterMax..ReorderMax extra
	// cycles — long enough to shuffle its arrival against traffic from
	// other nodes (cross-channel reordering; same-channel order is
	// still preserved).
	ReorderProb float64
	ReorderMax  uint64

	// DupProb delivers an extra copy of the message. Illegal for this
	// protocol: used to verify that a duplicated message surfaces as a
	// structured ProtocolError rather than a crash.
	DupProb float64

	// DropProb removes the message entirely. Illegal: used to verify
	// the no-progress watchdog and deadlock diagnoser fire.
	DropProb float64
}

// Enabled reports whether the config perturbs anything.
func (c Config) Enabled() bool {
	return c.JitterProb > 0 || c.ReorderProb > 0 || c.DupProb > 0 || c.DropProb > 0
}

// Legal reports whether the config only injects timings the protocol
// is required to tolerate (no duplication, no drops). The torture
// sweep draws from legal configs; illegal modes are opt-in.
func (c Config) Legal() bool { return c.DupProb == 0 && c.DropProb == 0 }

// withDefaults fills the magnitude knobs that make probabilities
// meaningful.
func (c Config) withDefaults() Config {
	if c.JitterProb > 0 && c.JitterMax == 0 {
		c.JitterMax = 8
	}
	if c.ReorderProb > 0 && c.ReorderMax == 0 {
		c.ReorderMax = 64
	}
	return c
}

// Spec renders the config as a compact spec string, parseable by
// ParseSpec; zero fields are omitted. Example:
// "seed=0x2a,jitter=0.2:12,reorder=0.05:64,dup=0.01,drop=0.01".
func (c Config) Spec() string {
	var parts []string
	if c.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%#x", c.Seed))
	}
	if c.JitterProb > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%s:%d", fmtProb(c.JitterProb), c.JitterMax))
	}
	if c.ReorderProb > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%s:%d", fmtProb(c.ReorderProb), c.ReorderMax))
	}
	if c.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%s", fmtProb(c.DupProb)))
	}
	if c.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%s", fmtProb(c.DropProb)))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

func fmtProb(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// ParseSpec parses a spec string produced by Spec (or hand-written).
// "" and "none" mean no faults.
func ParseSpec(s string) (Config, error) {
	var c Config
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return c, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Config{}, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		prob, max, hasMax, err := parseVal(val)
		if err != nil {
			return Config{}, fmt.Errorf("faults: bad value for %q: %v", key, err)
		}
		switch key {
		case "seed":
			seed, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), seedBase(val), 64)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			c.Seed = seed
		case "jitter":
			c.JitterProb = prob
			if hasMax {
				c.JitterMax = max
			}
		case "reorder":
			c.ReorderProb = prob
			if hasMax {
				c.ReorderMax = max
			}
		case "dup":
			c.DupProb = prob
		case "drop":
			c.DropProb = prob
		default:
			return Config{}, fmt.Errorf("faults: unknown spec key %q", key)
		}
	}
	if err := c.validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func seedBase(val string) int {
	if strings.HasPrefix(val, "0x") {
		return 16
	}
	return 10
}

// parseVal parses "P" or "P:MAX".
func parseVal(v string) (prob float64, max uint64, hasMax bool, err error) {
	if i := strings.IndexByte(v, ':'); i >= 0 {
		max, err = strconv.ParseUint(v[i+1:], 10, 64)
		if err != nil {
			return 0, 0, false, err
		}
		hasMax = true
		v = v[:i]
	}
	if strings.HasPrefix(v, "0x") {
		return 0, max, hasMax, nil // seed value; prob unused
	}
	prob, err = strconv.ParseFloat(v, 64)
	return prob, max, hasMax, err
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"jitter", c.JitterProb}, {"reorder", c.ReorderProb},
		{"dup", c.DupProb}, {"drop", c.DropProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// Stats counts the injector's decisions.
type Stats struct {
	Messages   uint64
	Jittered   uint64
	Reordered  uint64
	Duplicated uint64
	Dropped    uint64
}

// Injector perturbs message deliveries. It implements the mesh's
// Perturber interface. Not safe for concurrent use: each simulated
// system owns one injector.
type Injector struct {
	cfg   Config
	rng   *xrand.RNG
	stats Stats
	buf   []uint64
}

// New builds an injector from the config (magnitude defaults applied).
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, rng: xrand.New(cfg.Seed), buf: make([]uint64, 0, 2)}
}

// Config returns the effective configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the decision counts so far.
func (in *Injector) Stats() Stats { return in.stats }

// Perturb implements interconnect.Perturber. The returned slice is
// reused across calls.
func (in *Injector) Perturb(m *coherence.Msg) []uint64 {
	in.stats.Messages++
	in.buf = in.buf[:0]
	if in.cfg.DropProb > 0 && in.rng.Bool(in.cfg.DropProb) {
		in.stats.Dropped++
		return in.buf
	}
	var delay uint64
	if in.cfg.JitterProb > 0 && in.rng.Bool(in.cfg.JitterProb) {
		in.stats.Jittered++
		delay += 1 + in.rng.Uint64()%in.cfg.JitterMax
	}
	if in.cfg.ReorderProb > 0 && in.rng.Bool(in.cfg.ReorderProb) {
		in.stats.Reordered++
		span := in.cfg.ReorderMax
		if span <= in.cfg.JitterMax {
			span = in.cfg.JitterMax + 1
		}
		delay += in.cfg.JitterMax + 1 + in.rng.Uint64()%(span-in.cfg.JitterMax)
	}
	in.buf = append(in.buf, delay)
	if in.cfg.DupProb > 0 && in.rng.Bool(in.cfg.DupProb) {
		in.stats.Duplicated++
		in.buf = append(in.buf, delay+1+in.rng.Uint64()%8)
	}
	return in.buf
}
