// Package config defines the simulated system parameters.
//
// The defaults follow Table I of "No Rush in Executing Atomic Instructions"
// (HPCA 2025): a 32-core processor whose cores resemble the performance
// cores of Intel Alder Lake, with a three-level cache hierarchy kept
// coherent by a blocking MESI directory.
package config

import "fmt"

// AtomicPolicy selects when an atomic RMW instruction is issued.
type AtomicPolicy int

const (
	// PolicyEager issues atomics as soon as their operands are ready.
	PolicyEager AtomicPolicy = iota
	// PolicyLazy issues atomics once they are the oldest memory
	// instruction in the load queue and the store buffer has drained.
	PolicyLazy
	// PolicyRoW consults the contention predictor per atomic: predicted
	// non-contended atomics run eager, predicted contended ones lazy.
	PolicyRoW
	// PolicyFar performs atomics at the shared L3 bank instead of
	// locking the line in the private cache ("far atomics" — the
	// orthogonal near/far axis the paper's Section VII discusses).
	// Issue conditions follow the lazy rules to preserve TSO order.
	PolicyFar
)

// String returns the short name used in experiment tables.
func (p AtomicPolicy) String() string {
	switch p {
	case PolicyEager:
		return "eager"
	case PolicyLazy:
		return "lazy"
	case PolicyRoW:
		return "row"
	case PolicyFar:
		return "far"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Detection selects the contention-detection mechanism that trains the
// RoW predictor (Section IV of the paper).
type Detection int

const (
	// DetectEW marks an atomic contended when an external coherence
	// request hits its cacheline while the line is locked (execution
	// window, Section IV-A).
	DetectEW Detection = iota
	// DetectRW extends the window: external requests matching the
	// address of any in-flight atomic (locked or not) mark it contended
	// (ready window, Section IV-B).
	DetectRW
	// DetectRWDir additionally marks an atomic contended when its
	// cacheline arrives from a remote private cache with a fill latency
	// above LatencyThreshold (Section IV-C).
	DetectRWDir
)

// String returns the short name used in experiment tables.
func (d Detection) String() string {
	switch d {
	case DetectEW:
		return "EW"
	case DetectRW:
		return "RW"
	case DetectRWDir:
		return "RW+Dir"
	}
	return fmt.Sprintf("detect(%d)", int(d))
}

// PredictorKind selects the saturating-counter update rule
// (Section IV-D).
type PredictorKind int

const (
	// PredUpDown increments the counter on contention and decrements it
	// otherwise ("UpDown").
	PredUpDown PredictorKind = iota
	// PredSaturate saturates the counter to its maximum on contention
	// and decrements it otherwise ("Saturate on Contention").
	PredSaturate
	// PredTwoUpOneDown adds two on contention and subtracts one
	// otherwise; evaluated and discarded by the paper, kept as an
	// ablation.
	PredTwoUpOneDown
)

// String returns the short name used in experiment tables.
func (k PredictorKind) String() string {
	switch k {
	case PredUpDown:
		return "U/D"
	case PredSaturate:
		return "Sat"
	case PredTwoUpOneDown:
		return "+2/-1"
	}
	return fmt.Sprintf("pred(%d)", int(k))
}

// Core holds the out-of-order core parameters (Table I, "Processor").
type Core struct {
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions issued to execution per cycle
	CommitWidth int // instructions committed per cycle

	ROBSize int // reorder-buffer entries
	LQSize  int // load-queue entries
	SBSize  int // store-buffer entries
	AQSize  int // atomic-queue entries (Free Atomics)

	IntALULatency int // simple integer op latency
	IntMulLatency int // integer multiply latency
	FPLatency     int // floating-point op latency
	AGULatency    int // address-generation latency
	ForwardLat    int // store-to-load forwarding latency

	MemPorts int // L1D accesses accepted per cycle

	RedirectPenalty int // front-end refill bubble after flush/mispredict

	// FencedAtomics makes atomics behave as on old x86 parts: an
	// implicit full fence before and after (used by the Fig. 2
	// microbenchmark's "Kentsfield" configuration).
	FencedAtomics bool
}

// CacheLevel describes one cache level.
type CacheLevel struct {
	SizeBytes int
	Ways      int
	HitCycles int
}

// Memory holds the memory-hierarchy parameters (Table I, "Memory").
type Memory struct {
	LineBytes int

	L1I CacheLevel
	L1D CacheLevel
	L2  CacheLevel
	L3  CacheLevel // per bank

	L3Banks int

	// MSHRs bounds the outstanding misses per core (fill buffers);
	// demand misses beyond it retry, prefetches are dropped.
	MSHRs int

	DRAMCycles int // main memory access time

	PrefetcherDegree   int // IP-stride prefetch depth (0 disables)
	PrefetcherDistance int // stride confirmations needed before issuing

	// Network timing.
	LinkCycles   int // per-hop latency
	RouterCycles int // per-hop router pipeline
	BaseCycles   int // injection/ejection overhead per message
}

// RoW holds the Rush-or-Wait mechanism parameters (Section IV).
type RoW struct {
	Detection        Detection
	Predictor        PredictorKind
	PredictorEntries int // counter table entries (64 in the paper)
	PredictorBits    int // counter width N (4 in the paper)
	// Threshold compares against the counter: counter <= Threshold
	// executes eager. The paper uses 1 for UpDown and 0 for Saturate.
	// A negative value selects the per-predictor paper default.
	Threshold int
	// LatencyThreshold is the fill-latency cutoff (cycles) for the
	// directory-based detection (400 in the paper). A value < 0 means
	// "infinite" (disables the Dir mechanism even under DetectRWDir).
	LatencyThreshold int
	// TimestampBits is the width of the issued-cycle field in each AQ
	// entry (14 in the paper); latency is computed with unsigned
	// wraparound arithmetic at this width.
	TimestampBits int
}

// Config is the complete simulated-system configuration.
type Config struct {
	NumCores int

	Core   Core
	Mem    Memory
	RoW    RoW
	Policy AtomicPolicy

	// ForwardAtomics enables store-to-atomic forwarding and, under
	// PolicyRoW, the atomic-locality override that flips a predicted-
	// contended atomic back to eager when a matching older store is in
	// the store buffer (Section IV-E).
	ForwardAtomics bool

	// EarlyAddrCalc lets predicted-lazy atomics issue once in
	// only-calculate-address mode so the ready window can observe
	// external requests (Section IV-B). It is implied by DetectRW and
	// DetectRWDir under PolicyRoW.
	EarlyAddrCalc bool

	// WarmCaches pre-installs the lines each trace touches (private
	// lines in the owner's L2, shared lines in the L3) before the
	// measured run, emulating a region-of-interest measurement after
	// warm-up. Capacity still applies: regions larger than a cache
	// keep only what fits.
	WarmCaches bool

	// MaxCycles aborts a run that exceeds this cycle count (deadlock
	// guard for tests); 0 means no limit.
	MaxCycles uint64
}

// Default returns the Table I configuration: 32 Alder-Lake-like cores,
// RoW with the RW+Dir detector and the UpDown predictor, forwarding
// enabled.
func Default() *Config {
	return &Config{
		NumCores: 32,
		Core: Core{
			FetchWidth:      6,
			IssueWidth:      12,
			CommitWidth:     12,
			ROBSize:         512,
			LQSize:          192,
			SBSize:          128,
			AQSize:          16,
			IntALULatency:   1,
			IntMulLatency:   3,
			FPLatency:       4,
			AGULatency:      1,
			ForwardLat:      2,
			MemPorts:        3,
			RedirectPenalty: 12,
		},
		Mem: Memory{
			LineBytes:          64,
			L1I:                CacheLevel{SizeBytes: 32 << 10, Ways: 8, HitCycles: 4},
			L1D:                CacheLevel{SizeBytes: 48 << 10, Ways: 12, HitCycles: 5},
			L2:                 CacheLevel{SizeBytes: 1 << 20, Ways: 8, HitCycles: 12},
			L3:                 CacheLevel{SizeBytes: 4 << 20, Ways: 16, HitCycles: 35},
			L3Banks:            8,
			MSHRs:              16,
			DRAMCycles:         160,
			PrefetcherDegree:   2,
			PrefetcherDistance: 2,
			LinkCycles:         1,
			RouterCycles:       2,
			BaseCycles:         4,
		},
		RoW: RoW{
			Detection:        DetectRWDir,
			Predictor:        PredUpDown,
			PredictorEntries: 64,
			PredictorBits:    4,
			Threshold:        -1,
			LatencyThreshold: 400,
			TimestampBits:    14,
		},
		Policy:         PolicyRoW,
		ForwardAtomics: true,
		EarlyAddrCalc:  true,
		WarmCaches:     true,
		MaxCycles:      0,
	}
}

// Validate reports a descriptive error when the configuration is not
// simulable.
func (c *Config) Validate() error {
	switch {
	case c.NumCores <= 0:
		return fmt.Errorf("config: NumCores must be positive, got %d", c.NumCores)
	case c.Core.ROBSize <= 0 || c.Core.LQSize <= 0 || c.Core.SBSize <= 0:
		return fmt.Errorf("config: ROB/LQ/SB sizes must be positive (%d/%d/%d)",
			c.Core.ROBSize, c.Core.LQSize, c.Core.SBSize)
	case c.Core.AQSize <= 0:
		return fmt.Errorf("config: AQSize must be positive, got %d", c.Core.AQSize)
	case c.Core.FetchWidth <= 0 || c.Core.IssueWidth <= 0 || c.Core.CommitWidth <= 0:
		return fmt.Errorf("config: pipeline widths must be positive (%d/%d/%d)",
			c.Core.FetchWidth, c.Core.IssueWidth, c.Core.CommitWidth)
	case c.Mem.LineBytes <= 0 || c.Mem.LineBytes&(c.Mem.LineBytes-1) != 0:
		return fmt.Errorf("config: LineBytes must be a positive power of two, got %d", c.Mem.LineBytes)
	case c.Mem.L3Banks <= 0:
		return fmt.Errorf("config: L3Banks must be positive, got %d", c.Mem.L3Banks)
	case c.RoW.PredictorEntries <= 0 || c.RoW.PredictorEntries&(c.RoW.PredictorEntries-1) != 0:
		return fmt.Errorf("config: PredictorEntries must be a positive power of two, got %d", c.RoW.PredictorEntries)
	case c.RoW.PredictorBits <= 0 || c.RoW.PredictorBits > 16:
		return fmt.Errorf("config: PredictorBits must be in [1,16], got %d", c.RoW.PredictorBits)
	case c.RoW.TimestampBits <= 0 || c.RoW.TimestampBits > 32:
		return fmt.Errorf("config: TimestampBits must be in [1,32], got %d", c.RoW.TimestampBits)
	}
	for _, lvl := range []struct {
		name string
		l    CacheLevel
	}{{"L1I", c.Mem.L1I}, {"L1D", c.Mem.L1D}, {"L2", c.Mem.L2}, {"L3", c.Mem.L3}} {
		if lvl.l.SizeBytes <= 0 || lvl.l.Ways <= 0 {
			return fmt.Errorf("config: %s size/ways must be positive (%d/%d)", lvl.name, lvl.l.SizeBytes, lvl.l.Ways)
		}
		if lvl.l.SizeBytes%(lvl.l.Ways*c.Mem.LineBytes) != 0 {
			return fmt.Errorf("config: %s size %d not divisible by ways*line (%d*%d)",
				lvl.name, lvl.l.SizeBytes, lvl.l.Ways, c.Mem.LineBytes)
		}
		sets := lvl.l.SizeBytes / (lvl.l.Ways * c.Mem.LineBytes)
		if sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s set count %d must be a power of two", lvl.name, sets)
		}
	}
	return nil
}

// Clone returns a deep copy that can be mutated independently.
func (c *Config) Clone() *Config {
	cp := *c
	return &cp
}

// PredictorThreshold resolves the effective eager/lazy decision
// threshold, applying the paper's per-predictor defaults when
// Threshold is negative.
func (c *Config) PredictorThreshold() int {
	if c.RoW.Threshold >= 0 {
		return c.RoW.Threshold
	}
	switch c.RoW.Predictor {
	case PredSaturate:
		return 0
	default:
		return 1
	}
}
