package config

import (
	"strings"
	"testing"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTableI(t *testing.T) {
	cfg := Default()
	if cfg.NumCores != 32 {
		t.Errorf("cores = %d, want 32", cfg.NumCores)
	}
	if cfg.Core.FetchWidth != 6 || cfg.Core.IssueWidth != 12 || cfg.Core.CommitWidth != 12 {
		t.Errorf("widths = %d/%d/%d, want 6/12/12", cfg.Core.FetchWidth, cfg.Core.IssueWidth, cfg.Core.CommitWidth)
	}
	if cfg.Core.ROBSize != 512 || cfg.Core.LQSize != 192 || cfg.Core.SBSize != 128 {
		t.Errorf("ROB/LQ/SB = %d/%d/%d, want 512/192/128", cfg.Core.ROBSize, cfg.Core.LQSize, cfg.Core.SBSize)
	}
	if cfg.Core.AQSize != 16 {
		t.Errorf("AQ = %d, want 16", cfg.Core.AQSize)
	}
	if cfg.Mem.L1D.SizeBytes != 48<<10 || cfg.Mem.L1D.Ways != 12 || cfg.Mem.L1D.HitCycles != 5 {
		t.Errorf("L1D = %d/%d/%d", cfg.Mem.L1D.SizeBytes, cfg.Mem.L1D.Ways, cfg.Mem.L1D.HitCycles)
	}
	if cfg.Mem.L2.SizeBytes != 1<<20 || cfg.Mem.L2.Ways != 8 || cfg.Mem.L2.HitCycles != 12 {
		t.Errorf("L2 = %d/%d/%d", cfg.Mem.L2.SizeBytes, cfg.Mem.L2.Ways, cfg.Mem.L2.HitCycles)
	}
	if cfg.Mem.L3.SizeBytes != 4<<20 || cfg.Mem.L3.Ways != 16 || cfg.Mem.L3.HitCycles != 35 {
		t.Errorf("L3 = %d/%d/%d", cfg.Mem.L3.SizeBytes, cfg.Mem.L3.Ways, cfg.Mem.L3.HitCycles)
	}
	if cfg.Mem.DRAMCycles != 160 {
		t.Errorf("DRAM = %d, want 160", cfg.Mem.DRAMCycles)
	}
	if cfg.RoW.PredictorEntries != 64 || cfg.RoW.PredictorBits != 4 {
		t.Errorf("predictor = %dx%d, want 64x4", cfg.RoW.PredictorEntries, cfg.RoW.PredictorBits)
	}
	if cfg.RoW.LatencyThreshold != 400 || cfg.RoW.TimestampBits != 14 {
		t.Errorf("threshold/timestamp = %d/%d, want 400/14", cfg.RoW.LatencyThreshold, cfg.RoW.TimestampBits)
	}
}

func TestRoWStorageBudget(t *testing.T) {
	// The paper claims 64 bytes total: 64x4-bit counters (256 bits)
	// plus 16 AQ entries x (1+1+14) bits (256 bits).
	cfg := Default()
	predictorBits := cfg.RoW.PredictorEntries * cfg.RoW.PredictorBits
	aqBits := cfg.Core.AQSize * (1 + 1 + cfg.RoW.TimestampBits)
	if total := (predictorBits + aqBits) / 8; total != 64 {
		t.Fatalf("RoW storage = %d bytes, want 64", total)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		substr string
	}{
		{"cores", func(c *Config) { c.NumCores = 0 }, "NumCores"},
		{"rob", func(c *Config) { c.Core.ROBSize = 0 }, "ROB"},
		{"aq", func(c *Config) { c.Core.AQSize = -1 }, "AQSize"},
		{"widths", func(c *Config) { c.Core.FetchWidth = 0 }, "width"},
		{"line", func(c *Config) { c.Mem.LineBytes = 60 }, "LineBytes"},
		{"banks", func(c *Config) { c.Mem.L3Banks = 0 }, "L3Banks"},
		{"pred-entries", func(c *Config) { c.RoW.PredictorEntries = 3 }, "PredictorEntries"},
		{"pred-bits", func(c *Config) { c.RoW.PredictorBits = 0 }, "PredictorBits"},
		{"timestamp", func(c *Config) { c.RoW.TimestampBits = 40 }, "TimestampBits"},
		{"cache-ways", func(c *Config) { c.Mem.L1D.Ways = 0 }, "L1D"},
		{"cache-divisible", func(c *Config) { c.Mem.L2.SizeBytes = 1<<20 + 64 }, "L2"},
	}
	for _, c := range cases {
		cfg := Default()
		c.mutate(cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.substr)
		}
	}
}

func TestPredictorThresholdDefaults(t *testing.T) {
	cfg := Default()
	cfg.RoW.Threshold = -1
	cfg.RoW.Predictor = PredUpDown
	if got := cfg.PredictorThreshold(); got != 1 {
		t.Fatalf("UpDown default threshold = %d, want 1", got)
	}
	cfg.RoW.Predictor = PredSaturate
	if got := cfg.PredictorThreshold(); got != 0 {
		t.Fatalf("Saturate default threshold = %d, want 0", got)
	}
	cfg.RoW.Threshold = 5
	if got := cfg.PredictorThreshold(); got != 5 {
		t.Fatalf("explicit threshold = %d, want 5", got)
	}
}

func TestClone(t *testing.T) {
	a := Default()
	b := a.Clone()
	b.NumCores = 7
	b.RoW.Detection = DetectEW
	if a.NumCores == 7 || a.RoW.Detection == DetectEW {
		t.Fatal("clone aliases the original")
	}
}

func TestStringers(t *testing.T) {
	for _, p := range []AtomicPolicy{PolicyEager, PolicyLazy, PolicyRoW, AtomicPolicy(9)} {
		if p.String() == "" {
			t.Errorf("empty policy string for %d", p)
		}
	}
	for _, d := range []Detection{DetectEW, DetectRW, DetectRWDir, Detection(9)} {
		if d.String() == "" {
			t.Errorf("empty detection string for %d", d)
		}
	}
	for _, k := range []PredictorKind{PredUpDown, PredSaturate, PredTwoUpOneDown, PredictorKind(9)} {
		if k.String() == "" {
			t.Errorf("empty predictor string for %d", k)
		}
	}
}
