// Package sram provides a generic set-associative tag array with LRU
// replacement, shared by the private caches, the shared L3 and the
// instruction cache. It tracks presence and per-line metadata; data
// values are not simulated (the model is timing-only).
package sram

import "fmt"

// Line is one array entry.
type Line struct {
	Valid bool
	Tag   uint64 // full line address (low bits cleared by the caller)
	Meta  uint8  // caller-defined metadata (e.g. coherence state)
	LRU   uint64 // higher = more recently used
}

// Array is a set-associative array indexed by line address.
type Array struct {
	sets      int
	ways      int
	lineShift uint
	lines     []Line // sets*ways, row-major
	clock     uint64

	hits   uint64
	misses uint64
}

// New builds an array with the given geometry. sizeBytes must be
// divisible by ways*lineBytes and yield a power-of-two set count.
func New(sizeBytes, ways, lineBytes int) *Array {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 || sizeBytes%(ways*lineBytes) != 0 {
		panic(fmt.Sprintf("sram: bad geometry size=%d ways=%d line=%d", sizeBytes, ways, lineBytes))
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("sram: set count %d is not a positive power of two", sets))
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Array{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		lines:     make([]Line, sets*ways),
	}
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

func (a *Array) setIndex(line uint64) int {
	return int((line >> a.lineShift) & uint64(a.sets-1))
}

func (a *Array) set(line uint64) []Line {
	s := a.setIndex(line)
	return a.lines[s*a.ways : (s+1)*a.ways]
}

// Lookup finds a line and, when touch is true, refreshes its LRU
// position. It returns a pointer valid until the next Insert on the
// same set, or nil on miss.
func (a *Array) Lookup(line uint64, touch bool) *Line {
	set := a.set(line)
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			if touch {
				a.clock++
				set[i].LRU = a.clock
			}
			a.hits++
			return &set[i]
		}
	}
	a.misses++
	return nil
}

// Contains reports presence without disturbing LRU or hit/miss stats.
func (a *Array) Contains(line uint64) bool {
	set := a.set(line)
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			return true
		}
	}
	return false
}

// Peek returns the line without disturbing LRU or stats.
func (a *Array) Peek(line uint64) *Line {
	set := a.set(line)
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			return &set[i]
		}
	}
	return nil
}

// Insert installs a line, evicting the LRU way if the set is full.
// It returns the evicted line's (tag, meta) with evicted=true when a
// valid line was displaced. Inserting an already-present line just
// refreshes it.
func (a *Array) Insert(line uint64, meta uint8) (evictedTag uint64, evictedMeta uint8, evicted bool) {
	set := a.set(line)
	a.clock++
	// Already present: refresh.
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			set[i].Meta = meta
			set[i].LRU = a.clock
			return 0, 0, false
		}
	}
	// Free way.
	for i := range set {
		if !set[i].Valid {
			set[i] = Line{Valid: true, Tag: line, Meta: meta, LRU: a.clock}
			return 0, 0, false
		}
	}
	// Evict LRU.
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].LRU < set[victim].LRU {
			victim = i
		}
	}
	evictedTag, evictedMeta = set[victim].Tag, set[victim].Meta
	set[victim] = Line{Valid: true, Tag: line, Meta: meta, LRU: a.clock}
	return evictedTag, evictedMeta, true
}

// InsertLRU installs a line at the least-recently-used position so a
// subsequent insert in the same set prefers to evict it (used for
// prefetches that should not pollute).
func (a *Array) InsertLRU(line uint64, meta uint8) (evictedTag uint64, evictedMeta uint8, evicted bool) {
	t, m, e := a.Insert(line, meta)
	if l := a.Peek(line); l != nil {
		l.LRU = 0
	}
	return t, m, e
}

// Invalidate removes a line; it reports whether the line was present
// and returns its metadata.
func (a *Array) Invalidate(line uint64) (meta uint8, present bool) {
	set := a.set(line)
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			meta = set[i].Meta
			set[i] = Line{}
			return meta, true
		}
	}
	return 0, false
}

// Hits returns the number of Lookup hits.
func (a *Array) Hits() uint64 { return a.hits }

// Misses returns the number of Lookup misses.
func (a *Array) Misses() uint64 { return a.misses }

// InsertVeto installs a line like Insert but never evicts a line for
// which veto returns true (e.g. a cacheline locked by an in-flight
// atomic). When every candidate way is vetoed it reports ok=false and
// leaves the array untouched; the caller should then treat the fill as
// uncacheable.
func (a *Array) InsertVeto(line uint64, meta uint8, veto func(tag uint64) bool) (evictedTag uint64, evictedMeta uint8, evicted, ok bool) {
	set := a.set(line)
	a.clock++
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			set[i].Meta = meta
			set[i].LRU = a.clock
			return 0, 0, false, true
		}
	}
	for i := range set {
		if !set[i].Valid {
			set[i] = Line{Valid: true, Tag: line, Meta: meta, LRU: a.clock}
			return 0, 0, false, true
		}
	}
	victim := -1
	for i := range set {
		if veto != nil && veto(set[i].Tag) {
			continue
		}
		if victim < 0 || set[i].LRU < set[victim].LRU {
			victim = i
		}
	}
	if victim < 0 {
		return 0, 0, false, false
	}
	evictedTag, evictedMeta = set[victim].Tag, set[victim].Meta
	set[victim] = Line{Valid: true, Tag: line, Meta: meta, LRU: a.clock}
	return evictedTag, evictedMeta, true, true
}

// ForEach calls fn for every valid line in the array (diagnostics and
// invariant checking; order is unspecified).
func (a *Array) ForEach(fn func(tag uint64, meta uint8)) {
	for i := range a.lines {
		if a.lines[i].Valid {
			fn(a.lines[i].Tag, a.lines[i].Meta)
		}
	}
}

// VictimFor returns the tag that Insert would evict for this line, or
// evicted=false if the set has room or the line is already present.
func (a *Array) VictimFor(line uint64) (tag uint64, meta uint8, evicted bool) {
	set := a.set(line)
	victim := -1
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			return 0, 0, false
		}
		if !set[i].Valid {
			return 0, 0, false
		}
		if victim < 0 || set[i].LRU < set[victim].LRU {
			victim = i
		}
	}
	return set[victim].Tag, set[victim].Meta, true
}
