package sram

import (
	"testing"

	"rowsim/internal/snapcheck"
)

// TestSnapshotCoversEveryField is the snapshot-completeness guard for
// the SRAM array (and the Line record its snapshot copies wholesale).
func TestSnapshotCoversEveryField(t *testing.T) {
	snapcheck.Assert(t, Array{}, []string{
		"lines", "clock", "hits", "misses",
	}, map[string]string{
		"sets":      "construction-time geometry",
		"ways":      "construction-time geometry",
		"lineShift": "construction-time geometry",
	})

	snapcheck.Assert(t, Line{}, []string{
		"Valid", "Tag", "Meta", "LRU",
	}, nil)
}
