package sram

import (
	"testing"
	"testing/quick"

	"rowsim/internal/xrand"
)

func line(i uint64) uint64 { return i * 64 }

func TestLookupMissThenInsertHit(t *testing.T) {
	a := New(4096, 4, 64)
	if a.Lookup(line(1), true) != nil {
		t.Fatal("unexpected hit on empty array")
	}
	a.Insert(line(1), 7)
	l := a.Lookup(line(1), true)
	if l == nil {
		t.Fatal("expected hit after insert")
	}
	if l.Meta != 7 {
		t.Fatalf("meta = %d, want 7", l.Meta)
	}
	if a.Hits() != 1 || a.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", a.Hits(), a.Misses())
	}
}

func TestInsertEvictsLRU(t *testing.T) {
	// 2 ways, 1 set: third insert evicts the least recently used.
	a := New(128, 2, 64)
	a.Insert(line(0), 0)
	a.Insert(line(1), 0)
	a.Lookup(line(0), true) // line 0 now MRU
	evTag, _, evicted := a.Insert(line(2), 0)
	if !evicted {
		t.Fatal("expected an eviction")
	}
	if evTag != line(1) {
		t.Fatalf("evicted %#x, want %#x (the LRU)", evTag, line(1))
	}
	if !a.Contains(line(0)) || !a.Contains(line(2)) {
		t.Fatal("expected lines 0 and 2 resident")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	a := New(128, 2, 64)
	a.Insert(line(0), 1)
	a.Insert(line(1), 1)
	a.Insert(line(0), 5) // refresh, now line 1 is LRU
	if _, _, ev := a.Insert(line(0), 5); ev {
		t.Fatal("reinsert must not evict")
	}
	evTag, _, evicted := a.Insert(line(2), 0)
	if !evicted || evTag != line(1) {
		t.Fatalf("evicted (%#x,%v), want line 1", evTag, evicted)
	}
	if l := a.Peek(line(0)); l == nil || l.Meta != 5 {
		t.Fatal("refresh did not update metadata")
	}
}

func TestInvalidate(t *testing.T) {
	a := New(4096, 4, 64)
	a.Insert(line(3), 9)
	meta, present := a.Invalidate(line(3))
	if !present || meta != 9 {
		t.Fatalf("invalidate = (%d,%v), want (9,true)", meta, present)
	}
	if _, present = a.Invalidate(line(3)); present {
		t.Fatal("double invalidate reported present")
	}
	if a.Contains(line(3)) {
		t.Fatal("line still present after invalidate")
	}
}

func TestInsertVetoAvoidsLockedLine(t *testing.T) {
	a := New(128, 2, 64) // 1 set, 2 ways
	a.Insert(line(0), 0)
	a.Insert(line(1), 0)
	locked := map[uint64]bool{line(0): true}
	veto := func(tag uint64) bool { return locked[tag] }
	evTag, _, evicted, ok := a.InsertVeto(line(2), 0, veto)
	if !ok || !evicted {
		t.Fatalf("InsertVeto = (ok=%v,evicted=%v), want both true", ok, evicted)
	}
	if evTag != line(1) {
		t.Fatalf("evicted %#x, want the unlocked line 1", evTag)
	}
	if !a.Contains(line(0)) {
		t.Fatal("locked line was evicted")
	}
}

func TestInsertVetoAllLockedBypasses(t *testing.T) {
	a := New(128, 2, 64)
	a.Insert(line(0), 0)
	a.Insert(line(1), 0)
	veto := func(uint64) bool { return true }
	_, _, _, ok := a.InsertVeto(line(2), 0, veto)
	if ok {
		t.Fatal("expected bypass when every way is vetoed")
	}
	if a.Contains(line(2)) {
		t.Fatal("bypassed fill must not be installed")
	}
}

func TestVictimFor(t *testing.T) {
	a := New(128, 2, 64)
	if _, _, ev := a.VictimFor(line(5)); ev {
		t.Fatal("empty set must not report a victim")
	}
	a.Insert(line(0), 0)
	a.Insert(line(1), 0)
	if _, _, ev := a.VictimFor(line(0)); ev {
		t.Fatal("present line must not report a victim")
	}
	tag, _, ev := a.VictimFor(line(2))
	if !ev || tag != line(0) {
		t.Fatalf("victim = (%#x,%v), want line 0", tag, ev)
	}
}

func TestSetIsolation(t *testing.T) {
	// Lines in different sets never evict each other.
	a := New(8192, 2, 64) // 64 sets
	for i := uint64(0); i < 64; i++ {
		if _, _, ev := a.Insert(line(i), 0); ev {
			t.Fatalf("insert into distinct set %d evicted", i)
		}
	}
	for i := uint64(0); i < 64; i++ {
		if !a.Contains(line(i)) {
			t.Fatalf("line %d missing", i)
		}
	}
}

func TestInsertLRUPreferredVictim(t *testing.T) {
	a := New(128, 2, 64)
	a.Insert(line(0), 0)
	a.InsertLRU(line(1), 0) // inserted at LRU position
	evTag, _, evicted := a.Insert(line(2), 0)
	if !evicted || evTag != line(1) {
		t.Fatalf("evicted (%#x,%v), want the LRU-inserted line 1", evTag, evicted)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range []struct{ size, ways, line int }{
		{0, 4, 64}, {4096, 0, 64}, {4096, 4, 0}, {4096 + 64, 4, 64}, // non-pow2 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d) did not panic", g.size, g.ways, g.line)
				}
			}()
			New(g.size, g.ways, g.line)
		}()
	}
}

// TestQuickCapacityInvariant: regardless of the insert sequence, the
// number of resident lines never exceeds capacity, and the most
// recently inserted line is always resident.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		a := New(4096, 4, 64) // 64 lines capacity
		rng := xrand.New(seed)
		var last uint64
		resident := make(map[uint64]bool)
		for i := 0; i < int(n%512)+1; i++ {
			l := line(uint64(rng.Intn(256)))
			evTag, _, ev := a.Insert(l, 0)
			resident[l] = true
			if ev {
				delete(resident, evTag)
			}
			last = l
		}
		if !a.Contains(last) {
			return false
		}
		count := 0
		for l := range resident {
			if a.Contains(l) {
				count++
			} else {
				return false // bookkeeping and array disagree
			}
		}
		return count <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLookupAfterInsert: lookups of inserted lines always hit
// until an eviction removes them (tracked via returned evictions).
func TestQuickLookupAfterInsert(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(2048, 2, 64)
		rng := xrand.New(seed)
		live := make(map[uint64]uint8)
		for i := 0; i < 300; i++ {
			l := line(uint64(rng.Intn(128)))
			meta := uint8(rng.Intn(4))
			evTag, _, ev := a.Insert(l, meta)
			if ev {
				delete(live, evTag)
			}
			live[l] = meta
		}
		for l, meta := range live {
			got := a.Peek(l)
			if got == nil || got.Meta != meta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
