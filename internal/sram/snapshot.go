package sram

import "fmt"

// Snap is a deep copy of an Array's mutable state. It is opaque to
// callers: the model checker (internal/mcheck) captures one per array
// before exploring a branch and restores it when backtracking. The
// geometry (sets, ways, line shift) is construction-time state and is
// not copied; a Snap may only be restored into the array it was taken
// from, or one built with identical geometry.
type Snap struct {
	lines  []Line
	clock  uint64
	hits   uint64
	misses uint64
}

// Snapshot captures the array's contents, LRU clock and stats.
func (a *Array) Snapshot() Snap {
	return Snap{
		lines:  append([]Line(nil), a.lines...),
		clock:  a.clock,
		hits:   a.hits,
		misses: a.misses,
	}
}

// Restore rewinds the array to a previously captured Snap.
func (a *Array) Restore(s Snap) {
	if len(s.lines) != len(a.lines) {
		panic(fmt.Sprintf("sram: restoring snapshot of %d lines into array of %d", len(s.lines), len(a.lines)))
	}
	copy(a.lines, s.lines)
	a.clock = s.clock
	a.hits = s.hits
	a.misses = s.misses
}
