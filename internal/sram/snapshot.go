package sram

import "fmt"

// Snap is a deep copy of an Array's mutable state. The model checker
// (internal/mcheck) captures one per array before exploring a branch
// and restores it when backtracking; checkpoints serialize it to disk,
// which is why every field is exported. The geometry (sets, ways, line
// shift) is construction-time state and is not copied; a Snap may only
// be restored into the array it was taken from, or one built with
// identical geometry.
type Snap struct {
	Lines  []Line `json:"lines"`
	Clock  uint64 `json:"clock"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Snapshot captures the array's contents, LRU clock and stats.
func (a *Array) Snapshot() Snap {
	return Snap{
		Lines:  append([]Line(nil), a.lines...),
		Clock:  a.clock,
		Hits:   a.hits,
		Misses: a.misses,
	}
}

// Restore rewinds the array to a previously captured Snap.
func (a *Array) Restore(s Snap) {
	if len(s.Lines) != len(a.lines) {
		panic(fmt.Sprintf("sram: restoring snapshot of %d lines into array of %d", len(s.Lines), len(a.lines)))
	}
	copy(a.lines, s.Lines)
	a.clock = s.Clock
	a.hits = s.Hits
	a.misses = s.Misses
}
