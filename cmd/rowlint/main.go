// Command rowlint runs the simulator-aware static analyzers from
// internal/lint over the repository:
//
//	go run ./cmd/rowlint ./...
//
// It exits non-zero when any active finding remains. Suppressed
// findings (//rowlint:ignore <analyzer> <reason>) are counted in the
// summary and listed with -v. The pass is stdlib-only: it loads and
// type-checks packages with go/parser + go/types, so it needs no
// network and no tools beyond the Go distribution.
//
// Fast pre-commit runs: -only=<analyzer,...> restricts the analyzer
// set and -changed[=<git-ref>] restricts linting to packages with
// files modified since the ref (scripts/precommit.sh wires both).
//
// Whole-program artifacts: -ownership-report writes the classified
// cross-domain edge map, and -shard-plan writes SHARDPLAN.json — the
// machine-checked parallel execution plan (epoch bound, shard
// assignments, per-seam verdicts). -fail-on selects which conditions
// fail the run (findings, unclassified, unproven).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"rowsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// changedFlag implements -changed[=<git-ref>]: bare -changed compares
// the working tree against HEAD, -changed=<ref> against the ref.
type changedFlag struct {
	set bool
	ref string
}

func (c *changedFlag) String() string   { return c.ref }
func (c *changedFlag) IsBoolFlag() bool { return true }

func (c *changedFlag) Set(v string) error {
	c.set = true
	if v == "" || v == "true" {
		c.ref = "HEAD"
	} else {
		c.ref = v
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rowlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "also list suppressed findings")
	analyzersFlag := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	onlyFlag := fs.String("only", "", "comma-separated analyzer subset (alias of -analyzers)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (suppressed included) instead of text")
	reportPath := fs.String("ownership-report", "", "write the whole-program shard-ownership report (JSON) to this path ('-' for stdout); exits non-zero on unclassified edges")
	planPath := fs.String("shard-plan", "", "write the machine-checked parallel execution plan (JSON) to this path ('-' for stdout); needs the full module (./...)")
	failOn := fs.String("fail-on", "findings,unclassified,unproven", "comma-separated conditions that exit non-zero: findings, unclassified, unproven (or 'none')")
	var changed changedFlag
	fs.Var(&changed, "changed", "lint only packages with files modified since the given git ref (bare -changed: HEAD)")
	bigcopyBytes := fs.Int64("bigcopy-bytes", lint.BigCopyThreshold, "struct-copy size threshold (bytes) for the bigcopy analyzer")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lint.BigCopyThreshold = *bigcopyBytes
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	only := *analyzersFlag
	if *onlyFlag != "" {
		if only != "" && only != *onlyFlag {
			fmt.Fprintln(stderr, "rowlint: -only and -analyzers are aliases; pass just one")
			return 2
		}
		only = *onlyFlag
	}
	analyzers, err := selectAnalyzers(only)
	if err != nil {
		fmt.Fprintln(stderr, "rowlint:", err)
		return 2
	}
	gates, err := parseFailOn(*failOn)
	if err != nil {
		fmt.Fprintln(stderr, "rowlint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "rowlint:", err)
		return 2
	}
	modRoot, modPath, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "rowlint:", err)
		return 2
	}

	dirs, err := expandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "rowlint:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "rowlint: no packages match", strings.Join(patterns, " "))
		return 2
	}
	if changed.set {
		dirs, err = filterChanged(modRoot, changed.ref, dirs)
		if err != nil {
			fmt.Fprintln(stderr, "rowlint:", err)
			return 2
		}
		if len(dirs) == 0 {
			fmt.Fprintf(stderr, "rowlint: no packages changed since %s\n", changed.ref)
			return 0
		}
	}

	loader := lint.NewLoader(modRoot, modPath)
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "rowlint: %s: %v\n", dir, err)
			return 2
		}
		if pkg == nil {
			continue // no buildable non-test Go files
		}
		pkgs = append(pkgs, pkg)
	}

	// The noalloc-escape analyzer needs the compiler's escape
	// diagnostics; without a capture it refuses to pass vacuously.
	if hasAnalyzer(analyzers, lint.NoAllocEscape) {
		if err := loader.CaptureEscapes(pkgs); err != nil {
			fmt.Fprintln(stderr, "rowlint:", err)
			return 2
		}
	}

	var findings []lint.Finding
	for _, pkg := range pkgs {
		findings = append(findings, lint.Run(pkg, analyzers)...)
	}

	active, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			active++
		}
	}
	summary := fmt.Sprintf("rowlint: %d finding(s), %d suppressed, %d package(s)",
		active, suppressed, len(pkgs))
	if *jsonOut {
		// Keep stdout parseable: the JSON array is the only thing on it.
		if err := writeJSON(stdout, cwd, findings); err != nil {
			fmt.Fprintln(stderr, "rowlint:", err)
			return 2
		}
		fmt.Fprintln(stderr, summary)
	} else {
		for _, f := range findings {
			if !f.Suppressed || *verbose {
				fmt.Fprintln(stdout, rel(cwd, f))
			}
		}
		fmt.Fprintln(stdout, summary)
	}

	code := 0
	if active > 0 && gates["findings"] {
		code = 1
	}
	if *reportPath != "" {
		unclassified, err := writeOwnershipReport(stderr, loader, pkgs, *reportPath, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "rowlint:", err)
			return 2
		}
		if unclassified > 0 && gates["unclassified"] && code == 0 {
			code = 1
		}
	}
	if *planPath != "" {
		clean, err := writeShardPlan(stderr, loader, pkgs, *planPath, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "rowlint:", err)
			return 2
		}
		if !clean && gates["unproven"] && code == 0 {
			code = 1
		}
	}
	return code
}

// parseFailOn resolves the -fail-on flag into the set of gating
// conditions.
func parseFailOn(s string) (map[string]bool, error) {
	gates := make(map[string]bool)
	if s == "" || s == "none" {
		return gates, nil
	}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "findings", "unclassified", "unproven":
			gates[name] = true
		default:
			return nil, fmt.Errorf("unknown -fail-on condition %q (want findings, unclassified, unproven or none)", name)
		}
	}
	return gates, nil
}

// filterChanged keeps only the package directories holding files git
// reports as modified since ref (committed diffs, staged and unstaged
// edits, plus untracked files).
func filterChanged(modRoot, ref string, dirs []string) ([]string, error) {
	changedDirs := make(map[string]bool)
	record := func(out []byte) {
		for _, line := range strings.Split(string(out), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			changedDirs[filepath.Join(modRoot, filepath.FromSlash(filepath.Dir(line)))] = true
		}
	}
	diff := exec.Command("git", "-C", modRoot, "diff", "--name-only", ref, "--")
	out, err := diff.Output()
	if err != nil {
		return nil, fmt.Errorf("-changed needs a git checkout: git diff --name-only %s: %v", ref, err)
	}
	record(out)
	untracked := exec.Command("git", "-C", modRoot, "ls-files", "--others", "--exclude-standard")
	out, err = untracked.Output()
	if err != nil {
		return nil, fmt.Errorf("-changed needs a git checkout: git ls-files: %v", err)
	}
	record(out)

	var kept []string
	for _, dir := range dirs {
		if changedDirs[dir] {
			kept = append(kept, dir)
		}
	}
	return kept, nil
}

// writeShardPlan builds the parallel execution plan over the loaded
// packages, writes it to path, and reports whether every plan check
// gate is zero.
func writeShardPlan(stderr io.Writer, loader *lint.Loader, pkgs []*lint.Package, path string, stdout io.Writer) (bool, error) {
	plan, err := lint.BuildShardPlan(loader, pkgs)
	if err != nil {
		return false, err
	}
	data, err := plan.JSON()
	if err != nil {
		return false, err
	}
	data = append(data, '\n')
	if path == "-" {
		if _, err := stdout.Write(data); err != nil {
			return false, err
		}
	} else if err := os.WriteFile(path, data, 0o644); err != nil {
		return false, err
	}
	fmt.Fprintf(stderr, "rowlint: shard plan: %d seam(s) (%d unproven), epoch bound %d cycles, %d init-only violation(s), %d sync hazard(s), %d unclassified edge(s)\n",
		len(plan.Seams), plan.Checks.UnprovenSeams, plan.Epoch.MinCrossShardLatencyCycles,
		plan.Checks.InitOnlyViolations, plan.Checks.ShardSyncHazards, plan.Checks.UnclassifiedEdges)
	for _, s := range plan.Seams {
		if s.Verdict != "proven" {
			fmt.Fprintf(stderr, "rowlint: unproven seam: %s (%s): %d finding(s)\n", s.Func, s.Kind, s.Findings)
		}
	}
	return plan.Checks.Clean(), nil
}

// hasAnalyzer reports whether the selected set includes a.
func hasAnalyzer(analyzers []*lint.Analyzer, a *lint.Analyzer) bool {
	for _, x := range analyzers {
		if x == a {
			return true
		}
	}
	return false
}

// jsonFinding is the -json output shape: one finding per element,
// suppressed ones included with their recorded reason.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

func writeJSON(stdout io.Writer, cwd string, findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		if r, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(r, "..") {
			file = filepath.ToSlash(r)
		}
		out = append(out, jsonFinding{
			File:       file,
			Line:       f.Pos.Line,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
			Reason:     f.Reason,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeOwnershipReport builds the whole-program shard-ownership report
// over the loaded packages, writes it to path, and returns the number
// of unclassified cross-domain edges (the CI gate).
func writeOwnershipReport(stderr io.Writer, loader *lint.Loader, pkgs []*lint.Package, path string, stdout io.Writer) (int, error) {
	rep, err := lint.BuildOwnershipReport(loader, pkgs)
	if err != nil {
		return 0, err
	}
	data, err := rep.JSON()
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	if path == "-" {
		if _, err := stdout.Write(data); err != nil {
			return 0, err
		}
	} else if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, err
	}
	fmt.Fprintf(stderr, "rowlint: ownership report: %d entries, %d edges, %d unclassified\n",
		len(rep.Entries), len(rep.Edges), rep.Unclassified)
	if rep.Unclassified > 0 {
		for _, e := range rep.Edges {
			if e.Class == "unclassified" {
				fmt.Fprintf(stderr, "rowlint: unclassified edge: %s -> %s %s %s (%s)\n",
					e.From, e.To, e.Kind, e.Target, strings.Join(e.Sites, ", "))
			}
		}
	}
	return rep.Unclassified, nil
}

// selectAnalyzers resolves the -analyzers flag against the registry.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// expandPatterns turns package patterns (".", "./...", "./internal/sim")
// into a sorted list of directories containing non-test Go files.
// testdata, vendor, hidden and underscore-prefixed directories are
// skipped, matching the go tool's matching rules.
func expandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if !seen[abs] && hasGoFiles(abs) {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
		return nil
	}
	for _, pat := range patterns {
		if !strings.HasSuffix(pat, "/...") {
			if err := add(filepath.Join(cwd, pat)); err != nil {
				return nil, err
			}
			continue
		}
		root := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether the directory holds at least one
// buildable non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		return true
	}
	return false
}

// rel renders a finding with the file path relative to the working
// directory when possible.
func rel(cwd string, f lint.Finding) string {
	s := f.String()
	if r, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		f.Pos.Filename = r
		s = f.String()
	}
	return s
}
