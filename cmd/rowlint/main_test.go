package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSummaryCountsSuppressions drives the CLI over the suppression
// fixture package: active findings (including the malformed-directive
// ones) force exit 1, and the summary line counts the suppressions
// separately — a silent suppression would show up here as a wrong
// count.
func TestRunSummaryCountsSuppressions(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/lint/testdata/src/suppress/sim"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has active findings); stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "rowlint: 6 finding(s), 1 suppressed, 1 package(s)") {
		t.Errorf("summary line missing or wrong in output:\n%s", got)
	}
	if !strings.Contains(got, "missing the mandatory reason") {
		t.Errorf("malformed directive (missing reason) not reported:\n%s", got)
	}
	if !strings.Contains(got, "unknown analyzer mapsort") {
		t.Errorf("malformed directive (unknown analyzer) not reported:\n%s", got)
	}
	if strings.Contains(got, "order-independent") {
		t.Errorf("suppressed finding printed without -v:\n%s", got)
	}
}

// TestRunVerboseListsSuppressed: -v prints suppressed findings with
// their recorded reasons.
func TestRunVerboseListsSuppressed(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-v", "../../internal/lint/testdata/src/suppress/sim"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "(suppressed: boolean OR is order-independent)") {
		t.Errorf("-v did not list the suppressed finding with its reason:\n%s", out.String())
	}
}

// TestRunRejectsUnknownAnalyzer: the -analyzers flag validates names.
func TestRunRejectsUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers", "nope", "."}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown analyzer", code)
	}
	if !strings.Contains(errOut.String(), `unknown analyzer "nope"`) {
		t.Errorf("missing error text: %s", errOut.String())
	}
}

// TestRunOnlySelectsAnalyzers: -only restricts the analyzer set (the
// pre-commit fast path). Over the shardown fixture, -only shardown
// must report exactly the shardown findings and none from epochsafe.
func TestRunOnlySelectsAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-only", "shardown", "../../internal/lint/testdata/src/shardown/core"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "rowlint: 5 finding(s), 1 suppressed, 1 package(s)") {
		t.Errorf("summary line missing or wrong with -only shardown:\n%s", got)
	}
	if strings.Contains(got, "epochsafe:") {
		t.Errorf("-only shardown still ran epochsafe:\n%s", got)
	}
}

// TestRunOnlyAliasConflict: -only and -analyzers are aliases; passing
// both with different values is an error, same value is accepted.
func TestRunOnlyAliasConflict(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "shardown", "-analyzers", "maporder", "."}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2 for conflicting alias values", code)
	}
	if !strings.Contains(errOut.String(), "-only and -analyzers are aliases") {
		t.Errorf("missing alias-conflict error: %s", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	code := run([]string{"-only", "shardown", "-analyzers", "shardown", "../../internal/lint/testdata/src/shardown/core"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 when both flags agree; stderr: %s", code, errOut.String())
	}
}

// TestRunFailOnNone: -fail-on none reports findings but exits zero —
// the advisory mode for incremental adoption.
func TestRunFailOnNone(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-fail-on", "none", "../../internal/lint/testdata/src/shardown/core"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 with -fail-on none; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "shardown:") {
		t.Errorf("findings not reported in advisory mode:\n%s", out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-fail-on", "sometimes", "."}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown -fail-on condition", code)
	}
}

// TestRunJSONOutput: -json keeps stdout parseable (the array is the
// only thing on it) and loses no suppression reason.
func TestRunJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "../../internal/lint/testdata/src/suppress/sim"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	var findings []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
		Reason     string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 7 {
		t.Fatalf("got %d findings, want 7 (6 active + 1 suppressed)", len(findings))
	}
	reasons := 0
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
		if f.Suppressed {
			if f.Reason == "" {
				t.Errorf("suppressed finding lost its reason: %+v", f)
			}
			reasons++
		}
	}
	if reasons != 1 {
		t.Errorf("got %d suppressed findings, want 1", reasons)
	}
}

// TestRunShardPlanNeedsWholeModule: -shard-plan over a partial package
// set cannot derive the epoch bound and must fail loudly instead of
// emitting a half-plan.
func TestRunShardPlanNeedsWholeModule(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-shard-plan", "-", "../../internal/lint/testdata/src/shardown/core"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 without config+interconnect in the set", code)
	}
	if !strings.Contains(errOut.String(), "needs the config and interconnect packages") {
		t.Errorf("missing derivation error: %s", errOut.String())
	}
}

// TestRunShardPlanStdout: -shard-plan - writes the plan after the
// findings. The epochsafe fixture provides the entry root and seeded
// violations, the real config and interconnect packages feed the
// epoch-bound derivation; in advisory mode the unproven seams are
// listed on stderr but the exit stays zero.
func TestRunShardPlanStdout(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-shard-plan", "-", "-fail-on", "none",
		"../../internal/lint/testdata/src/epochsafe/core",
		"../../internal/config", "../../internal/interconnect"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 in advisory mode; stderr: %s", code, errOut.String())
	}
	got := out.String()
	start := strings.Index(got, "{")
	if start < 0 {
		t.Fatalf("no JSON object on stdout:\n%s", got)
	}
	var plan struct {
		Version int `json:"version"`
		Epoch   struct {
			MinCrossShardLatencyCycles int64 `json:"min_cross_shard_latency_cycles"`
		} `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(got[start:]), &plan); err != nil {
		t.Fatalf("plan JSON does not parse: %v\n%s", err, got[start:])
	}
	if plan.Version != 1 || plan.Epoch.MinCrossShardLatencyCycles != 7 {
		t.Errorf("plan header = %+v, want version 1 and a 7-cycle bound", plan)
	}
	if !strings.Contains(errOut.String(), "epoch bound 7 cycles") {
		t.Errorf("stderr summary missing the epoch bound: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "unproven seam: core.CacheSide.Spill") {
		t.Errorf("stderr does not list the unproven seams: %s", errOut.String())
	}
}

// TestRunChanged drives -changed against a throwaway git repository:
// a clean tree lints nothing (exit 0 with a note), an edit brings the
// package back into the linted set, and an untracked file counts too.
func TestRunChanged(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	dir := t.TempDir()
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", dir,
			"-c", "user.name=t", "-c", "user.email=t@t"}, args...)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.22\n")
	write("tiny/tiny.go", "package tiny\n\nfunc F() int { return 1 }\n")
	git("init", "-q")
	git("add", ".")
	git("commit", "-q", "-m", "seed")

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	// Clean tree: nothing to lint, and that is success, not an error.
	var out, errOut strings.Builder
	if code := run([]string{"-changed", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0 on a clean tree; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no packages changed since HEAD") {
		t.Errorf("missing clean-tree note: %s", errOut.String())
	}

	// An unstaged edit brings the package back.
	write("tiny/tiny.go", "package tiny\n\nfunc F() int { return 2 }\n")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-changed", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0 (clean package); stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "0 finding(s), 0 suppressed, 1 package(s)") {
		t.Errorf("edited package not linted:\n%s", out.String())
	}

	// -changed=<ref> and untracked files: a new package counts against
	// an explicit ref as well.
	git("add", ".")
	git("commit", "-q", "-m", "edit")
	write("fresh/fresh.go", "package fresh\n\nfunc G() int { return 3 }\n")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-changed=HEAD", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1 package(s)") {
		t.Errorf("untracked package not picked up:\n%s", out.String())
	}
}
