package main

import (
	"strings"
	"testing"
)

// TestRunSummaryCountsSuppressions drives the CLI over the suppression
// fixture package: active findings (including the malformed-directive
// ones) force exit 1, and the summary line counts the suppressions
// separately — a silent suppression would show up here as a wrong
// count.
func TestRunSummaryCountsSuppressions(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/lint/testdata/src/suppress/sim"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has active findings); stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "rowlint: 6 finding(s), 1 suppressed, 1 package(s)") {
		t.Errorf("summary line missing or wrong in output:\n%s", got)
	}
	if !strings.Contains(got, "missing the mandatory reason") {
		t.Errorf("malformed directive (missing reason) not reported:\n%s", got)
	}
	if !strings.Contains(got, "unknown analyzer mapsort") {
		t.Errorf("malformed directive (unknown analyzer) not reported:\n%s", got)
	}
	if strings.Contains(got, "order-independent") {
		t.Errorf("suppressed finding printed without -v:\n%s", got)
	}
}

// TestRunVerboseListsSuppressed: -v prints suppressed findings with
// their recorded reasons.
func TestRunVerboseListsSuppressed(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-v", "../../internal/lint/testdata/src/suppress/sim"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "(suppressed: boolean OR is order-independent)") {
		t.Errorf("-v did not list the suppressed finding with its reason:\n%s", out.String())
	}
}

// TestRunRejectsUnknownAnalyzer: the -analyzers flag validates names.
func TestRunRejectsUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers", "nope", "."}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown analyzer", code)
	}
	if !strings.Contains(errOut.String(), `unknown analyzer "nope"`) {
		t.Errorf("missing error text: %s", errOut.String())
	}
}
