// Command rowsweep sweeps one workload parameter and reports how the
// eager/lazy/RoW comparison responds — the tool behind the kind of
// sensitivity studies Section VI performs on the latency threshold,
// applied to workload characteristics instead.
//
//	rowsweep -workload sps -param sharedfrac -values 0.1,0.3,0.5,0.7,0.9
//	rowsweep -workload pc -param hotlines -values 1,2,4,8,16 -format csv
//	rowsweep -workload cq -param atomics10k -values 10,25,50,100
//
// Every run executes under the lifecycle supervisor: -timeout bounds
// one run's wall-clock time, -deadline the whole sweep's, transient
// failures retry with backoff, and -journal streams each outcome to a
// crash-safe JSONL log. A sweep killed mid-way (SIGINT or SIGKILL)
// resumes from its journal:
//
//	rowsweep ... -journal sweep.jsonl        # interrupted at cell 7/15
//	rowsweep -resume sweep.jsonl             # re-runs only the missing cells
//
// Resume re-reads the sweep definition from the journal's meta record,
// so no other flags are needed; completed runs are served from the
// journal and the final table is identical to an uninterrupted sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"rowsim/internal/checkpoint"
	"rowsim/internal/config"
	"rowsim/internal/experiments"
	"rowsim/internal/lifecycle"
	"rowsim/internal/profiling"
	"rowsim/internal/serve"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
	"rowsim/internal/workload"
)

// policies are the three configurations each sweep cell compares.
var policies = []struct {
	name string
	p    config.AtomicPolicy
}{
	{"eager", config.PolicyEager},
	{"lazy", config.PolicyLazy},
	{"row", config.PolicyRoW},
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		name    = flag.String("workload", "sps", "base workload")
		param   = flag.String("param", "sharedfrac", "parameter to sweep: "+strings.Join(serve.ParamNames(), ", "))
		values  = flag.String("values", "0.1,0.5,0.9", "comma-separated sweep values")
		cores   = flag.Int("cores", 32, "number of cores")
		instrs  = flag.Int("instrs", 8000, "instructions per core")
		seed    = flag.Uint64("seed", 1, "trace seed (0 selects the documented default seed)")
		schedF  = flag.String("sched", "event", "simulation scheduler: event (skip idle cycles) or cycle (tick every cycle); results are identical")
		format  = flag.String("format", "text", "output format: text, csv")
		journal = flag.String("journal", "", "write a crash-safe JSONL run journal to this path")
		resume  = flag.String("resume", "", "resume an interrupted sweep from its journal (re-runs only missing cells)")
		timeout = flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = off); timed-out runs retry")
		deadlin = flag.Duration("deadline", 0, "whole-sweep wall-clock deadline (0 = off)")
		retries = flag.Int("retries", 3, "attempt budget per run for transient failures (timeout, panic)")
		jobs    = flag.Int("jobs", 0, "parallel sweep workers (<1 = GOMAXPROCS); aggregate output is identical for any value")

		ckptEvery  = flag.Uint64("checkpoint-every", 0, "write a durable per-cell checkpoint every N simulated cycles (0 = off); interrupted or retried cells resume from it")
		resumeFrom = flag.String("resume-from", "", "directory holding mid-run checkpoints from a previous invocation (default: derived from the journal path when -checkpoint-every is set)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	// Seed 0 means "the default": resolve it here so the journal and
	// every repro record carry the real seed, never the ambiguous 0.
	if *seed == 0 {
		*seed = experiments.DefaultSeed
	}

	// os.Interrupt covers Ctrl-C; SIGTERM is what containers and
	// orchestrators send — both get the same graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadlin > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadlin)
		defer cancel()
	}

	var (
		jnl  *lifecycle.Journal
		snap *lifecycle.Snapshot
	)
	switch {
	case *resume != "":
		jnl, snap, err = lifecycle.Resume(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// The meta record carries a hash of the sweep definition; a
		// journal whose meta no longer hashes to it was edited or
		// written by a different definition — resuming it would
		// silently sweep the wrong cells.
		if cerr := snap.CheckSpec(*resume); cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			return 2
		}
		// Definition flags passed alongside -resume must agree with the
		// journal (convenience flags like -timeout/-deadline/-retries
		// are not part of the definition and still come from the line).
		a := snap.Meta.Args
		var mismatch error
		flag.Visit(func(f *flag.Flag) {
			want, isDef := a[f.Name]
			if !isDef || mismatch != nil {
				return
			}
			if got := f.Value.String(); got != want {
				mismatch = &lifecycle.SpecMismatchError{Path: *resume, Field: "-" + f.Name, Want: want, Got: got}
			}
		})
		if mismatch != nil {
			fmt.Fprintln(os.Stderr, mismatch)
			return 2
		}
		*name, *param, *values = a["workload"], a["param"], a["values"]
		*cores = atoi(a["cores"])
		*instrs = atoi(a["instrs"])
		// Journals written before the event scheduler existed have no
		// "sched" key; the scheduler does not change results, so those
		// resume under the flag's (default) mode.
		if v, ok := a["sched"]; ok {
			*schedF = v
		}
		s, perr := strconv.ParseUint(a["seed"], 10, 64)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "corrupt journal meta: bad seed %q\n", a["seed"])
			return 2
		}
		*seed = s
	case *journal != "":
		jnl, err = lifecycle.Create(*journal, lifecycle.Record{
			Tool: "rowsweep",
			Args: map[string]string{
				"workload": *name,
				"param":    *param,
				"values":   *values,
				"cores":    strconv.Itoa(*cores),
				"instrs":   strconv.Itoa(*instrs),
				"seed":     strconv.FormatUint(*seed, 10),
				"sched":    *schedF,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	// Checkpoints live in one directory per sweep, one file per cell
	// (named by the cell's content key, so a resume matches them without
	// any manifest). -resume-from names it explicitly; otherwise it is
	// derived from the journal path so interrupt-then-resume finds the
	// checkpoints with no extra flags.
	ckptDir := *resumeFrom
	if ckptDir == "" && *ckptEvery > 0 {
		switch {
		case *resume != "":
			ckptDir = *resume + ".ckpt"
		case *journal != "":
			ckptDir = *journal + ".ckpt"
		default:
			ckptDir = "rowsweep.ckpt"
		}
	}
	if ckptDir != "" {
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	sched, err := sim.ParseScheduler(*schedF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// The parameter set is shared with rowserve (internal/serve): one
	// definition of "what can be swept" across the CLI and the daemon.
	apply, ok := serve.Params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown parameter %q (known: %s)\n", *param, strings.Join(serve.ParamNames(), ", "))
		return 2
	}
	base, err := workload.Get(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	sup := lifecycle.New(lifecycle.Config{
		MaxAttempts: *retries,
		RunTimeout:  *timeout,
		JitterSeed:  *seed,
		Journal:     jnl,
	})

	// outcomes collects one supervised outcome per (value, policy) cell.
	// Cells are independent deterministic simulations, so they fan out
	// across a worker pool; the journal records outcomes in completion
	// order, but the aggregate table below is built from this map in
	// sweep order and is byte-identical for any worker count.
	outcomes := make(map[string]lifecycle.Outcome)
	canceled := false
	rawValues := strings.Split(*values, ",")
	type cellSpec struct {
		key  string
		wp   workload.Params
		pcfg config.AtomicPolicy
	}
	var cells []cellSpec
	for _, raw := range rawValues {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q: %v\n", raw, err)
			return 2
		}
		p := base
		apply(&p, v)
		for _, pol := range policies {
			key := fmt.Sprintf("%s=%s/%s", *param, strings.TrimSpace(raw), pol.name)
			if rec, ok := snap.Completed(key); ok {
				outcomes[key] = rec.Outcome()
				fmt.Fprintf(os.Stderr, "%-30s resumed from journal\n", key)
				continue
			}
			cells = append(cells, cellSpec{key: key, wp: p, pcfg: pol.p})
		}
	}
	var mu sync.Mutex
	experiments.ForEach(experiments.Jobs(*jobs), len(cells), func(i int) {
		c := cells[i]
		if ctx.Err() != nil {
			mu.Lock()
			canceled = true
			mu.Unlock()
			return
		}
		// The checkpoint content key covers everything that determines
		// the run — config (policy included), workload parameters,
		// shape, seed and code revision — so a stale or foreign
		// checkpoint can never be resumed into this cell.
		var cpath, ckey string
		if ckptDir != "" {
			ckey = experiments.ContentKey("rowsweep-cell", cellCfg(c.pcfg, *cores), c.wp, *instrs, *seed)
			cpath = filepath.Join(ckptDir, ckey[:16]+".ckpt")
		}
		out := sup.Do(ctx, lifecycle.Job{Key: c.key, Seed: *seed, Checkpoint: cpath}, func(runCtx context.Context) (sim.Result, error) {
			progs := workload.Generate(c.wp, *cores, *instrs, *seed)
			cfg := cellCfg(c.pcfg, *cores)
			opts := []sim.Option{sim.WithWarmFilter(workload.WarmFilter(c.wp)), sim.WithScheduler(sched)}
			if cpath != "" && *ckptEvery > 0 {
				opts = append(opts, sim.WithCheckpoint(*ckptEvery, checkpoint.Saver(cpath, ckey)))
			}
			s, err := sim.New(cfg, progs, opts...)
			if err != nil {
				return sim.Result{}, err
			}
			if cpath != "" {
				cyc, resumed, warn, err := checkpoint.ResumeLenient(s, cpath, ckey)
				if err != nil {
					return sim.Result{}, err
				}
				if warn != nil {
					fmt.Fprintf(os.Stderr, "%-30s checkpoint unusable, starting fresh: %v\n", c.key, warn)
				}
				if resumed {
					fmt.Fprintf(os.Stderr, "%-30s resumed from checkpoint at cycle %d\n", c.key, cyc)
				}
			}
			return s.RunCtx(runCtx)
		})
		if cpath != "" && out.Status.Terminal() {
			// The cell is done (ok, or deterministically failed): its
			// recovery state has no future use. Canceled cells keep
			// theirs for the next invocation.
			checkpoint.Remove(cpath)
		}
		mu.Lock()
		outcomes[c.key] = out
		switch out.Status {
		case lifecycle.StatusCanceled:
			canceled = true
		case lifecycle.StatusOK:
			fmt.Fprintf(os.Stderr, "%-30s ok (%d attempt(s))\n", c.key, out.Attempts)
		default:
			// Degrade gracefully: record and keep sweeping.
			fmt.Fprintf(os.Stderr, "%-30s %s after %d attempt(s): %v\n", c.key, out.Status, out.Attempts, out.Err)
		}
		mu.Unlock()
	})

	if canceled {
		hint := ""
		if jnl != nil {
			hint = fmt.Sprintf(" — resume with: rowsweep -resume %s", jnl.Path())
		}
		fmt.Fprintf(os.Stderr, "sweep interrupted%s\n", hint)
		closeJournal(jnl)
		return 130
	}

	t := &stats.Table{
		Title:   fmt.Sprintf("Sweep of %s over %s", *param, base.Name),
		Headers: []string{*param, "eager-cycles", "lazy/eager", "row(Sat)/eager", "%contended"},
	}
	for _, raw := range rawValues {
		raw = strings.TrimSpace(raw)
		cell := func(pol string) lifecycle.Outcome {
			return outcomes[fmt.Sprintf("%s=%s/%s", *param, raw, pol)]
		}
		eager, lazy, row := cell("eager"), cell("lazy"), cell("row")
		if eager.Status == lifecycle.StatusOK && lazy.Status == lifecycle.StatusOK && row.Status == lifecycle.StatusOK {
			t.AddRow(raw,
				fmt.Sprint(eager.Result.Cycles),
				stats.F(float64(lazy.Result.Cycles)/float64(eager.Result.Cycles)),
				stats.F(float64(row.Result.Cycles)/float64(eager.Result.Cycles)),
				stats.Pct(eager.Result.ContendedFrac))
			continue
		}
		// A degraded cell keeps its row (with the failure mode) instead
		// of aborting the sweep.
		status := func(o lifecycle.Outcome) string {
			if o.Status == lifecycle.StatusOK {
				return "ok"
			}
			return string(o.Status)
		}
		t.AddRow(raw, status(eager), status(lazy), status(row), "—")
	}
	if *format == "csv" {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t)
	}
	return closeJournal(jnl)
}

// closeJournal closes the journal and reports any write failure (a
// journal problem must be loud: a silent one makes resume lie).
func closeJournal(j *lifecycle.Journal) int {
	if j == nil {
		return 0
	}
	if err := j.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "journal error: %v\n", err)
		return 1
	}
	return 0
}

// cellCfg builds one sweep cell's simulator configuration. Shared by
// the run itself and the checkpoint content key, so the key always
// hashes exactly the configuration that executes.
func cellCfg(pol config.AtomicPolicy, cores int) *config.Config {
	cfg := config.Default()
	cfg.NumCores = cores
	cfg.Policy = pol
	cfg.RoW.Predictor = config.PredSaturate
	cfg.EarlyAddrCalc = pol == config.PolicyRoW
	cfg.MaxCycles = 500_000_000
	return cfg
}

func atoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corrupt journal meta: bad integer %q\n", s)
		os.Exit(2)
	}
	return v
}
