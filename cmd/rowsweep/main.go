// Command rowsweep sweeps one workload parameter and reports how the
// eager/lazy/RoW comparison responds — the tool behind the kind of
// sensitivity studies Section VI performs on the latency threshold,
// applied to workload characteristics instead.
//
//	rowsweep -workload sps -param sharedfrac -values 0.1,0.3,0.5,0.7,0.9
//	rowsweep -workload pc -param hotlines -values 1,2,4,8,16 -format csv
//	rowsweep -workload cq -param atomics10k -values 10,25,50,100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
	"rowsim/internal/workload"
)

// parameter applies one sweep value to the workload parameters.
var parameters = map[string]func(*workload.Params, float64){
	"atomics10k":  func(p *workload.Params, v float64) { p.AtomicsPer10K = v },
	"sharedfrac":  func(p *workload.Params, v float64) { p.SharedFrac = v },
	"hotlines":    func(p *workload.Params, v float64) { p.HotLines = int(v) },
	"storebefore": func(p *workload.Params, v float64) { p.StoreBefore = v },
	"workingset":  func(p *workload.Params, v float64) { p.WorkingSet = int(v) },
	"depmean":     func(p *workload.Params, v float64) { p.DepMean = v },
	"addrindep":   func(p *workload.Params, v float64) { p.AddrIndep = v },
}

func main() {
	var (
		name   = flag.String("workload", "sps", "base workload")
		param  = flag.String("param", "sharedfrac", "parameter to sweep: atomics10k, sharedfrac, hotlines, storebefore, workingset, depmean, addrindep")
		values = flag.String("values", "0.1,0.5,0.9", "comma-separated sweep values")
		cores  = flag.Int("cores", 32, "number of cores")
		instrs = flag.Int("instrs", 8000, "instructions per core")
		seed   = flag.Uint64("seed", 1, "trace seed")
		format = flag.String("format", "text", "output format: text, csv")
	)
	flag.Parse()

	apply, ok := parameters[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown parameter %q\n", *param)
		os.Exit(2)
	}
	base, err := workload.Get(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	t := &stats.Table{
		Title:   fmt.Sprintf("Sweep of %s over %s", *param, base.Name),
		Headers: []string{*param, "eager-cycles", "lazy/eager", "row(Sat)/eager", "%contended"},
	}
	for _, raw := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q: %v\n", raw, err)
			os.Exit(2)
		}
		p := base
		apply(&p, v)
		progs := workload.Generate(p, *cores, *instrs, *seed)

		run := func(policy config.AtomicPolicy) sim.Result {
			cfg := config.Default()
			cfg.NumCores = *cores
			cfg.Policy = policy
			cfg.RoW.Predictor = config.PredSaturate
			cfg.EarlyAddrCalc = policy == config.PolicyRoW
			cfg.MaxCycles = 500_000_000
			s, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(p)))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			r, err := s.Run()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return r
		}
		eager := run(config.PolicyEager)
		lazy := run(config.PolicyLazy)
		row := run(config.PolicyRoW)
		t.AddRow(raw,
			fmt.Sprint(eager.Cycles),
			stats.F(float64(lazy.Cycles)/float64(eager.Cycles)),
			stats.F(float64(row.Cycles)/float64(eager.Cycles)),
			stats.Pct(eager.ContendedFrac))
		fmt.Fprintf(os.Stderr, "%s=%s done\n", *param, raw)
	}
	if *format == "csv" {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t)
	}
}
