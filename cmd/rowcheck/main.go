// Command rowcheck exhaustively model-checks the blocking MESI
// directory protocol for tiny configurations, driving the real
// coherence/cache/interconnect implementations through every legal
// interleaving of message deliveries and core operations. It exits 0
// when every configuration in the requested matrix exhausts its state
// space cleanly, 1 when an invariant violation was found (printing the
// shrunk witness spec, replayable with `rowtorture -replay`), and 2
// when a search was truncated by the state or wall-clock cap before
// exhausting the space.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rowsim/internal/mcheck"
)

type matrixEntry struct {
	Name        string `json:"name"`
	WallNS      int64  `json:"wall_ns"`
	Visited     uint64 `json:"visited_states"`
	Transitions uint64 `json:"transitions"`
	MaxDepth    int    `json:"max_depth"`
	Truncated   bool   `json:"truncated"`
	Violation   string `json:"violation,omitempty"`
}

type report struct {
	Entries []matrixEntry `json:"entries"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		cores     = flag.Int("cores", 2, "number of cores (1..4)")
		lines     = flag.Int("lines", 1, "number of cachelines (1..2)")
		banks     = flag.Int("banks", 1, "number of directory banks (1..2)")
		ops       = flag.Int("ops", 3, "per-core program length (generated workload)")
		mode      = flag.String("mode", "both", "issue discipline: eager, lazy or both")
		net       = flag.String("net", "both", "network envelope: chan (per-channel FIFO), fifo (global FIFO) or both")
		bug       = flag.String("bug", "", "seed a protocol bug: getx-as-gets, drop-unblock, drop-inv")
		maxStates = flag.Uint64("max-states", 0, "truncate each search after this many states (0: unlimited)")
		wall      = flag.Duration("wall", 0, "wall-clock cap across the whole matrix (0: none)")
		benchJSON = flag.String("bench-json", "", "write explored-state counts as a JSON report to this path")
		quiet     = flag.Bool("q", false, "print only failures")
	)
	flag.Parse()

	modes, err := pick(*mode, "eager", "lazy")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rowcheck:", err)
		return 2
	}
	nets, err := pick(*net, "chan", "fifo")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rowcheck:", err)
		return 2
	}

	var stop func() bool
	if *wall > 0 {
		deadline := time.Now().Add(*wall)
		stop = func() bool { return time.Now().After(deadline) }
	}

	rep := report{}
	worst := 0
	for _, mo := range modes {
		for _, ne := range nets {
			cfg := mcheck.Config{
				Cores: *cores, Lines: *lines, Banks: *banks, Ops: *ops,
				Lazy: mo == "lazy", PerChannel: ne == "chan",
				Bug: *bug, MaxStates: *maxStates, StopAfter: stop,
			}
			name := fmt.Sprintf("rowcheck/%s/%s/c%dl%db%d", mo, ne, *cores, *lines, *banks)
			start := time.Now()
			res, err := mcheck.Check(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rowcheck: %s: %v\n", name, err)
				return 2
			}
			ent := matrixEntry{
				Name:        name,
				WallNS:      time.Since(start).Nanoseconds(),
				Visited:     res.Stats.Visited,
				Transitions: res.Stats.Transitions,
				MaxDepth:    res.Stats.MaxDepth,
				Truncated:   res.Stats.Truncated,
			}
			switch {
			case res.Violation != nil:
				ent.Violation = res.Violation.Kind
				fmt.Printf("FAIL %s: %s\n", name, res.Violation.Error())
				fmt.Printf("  witness (%d choices): %v\n", len(res.Violation.Trace), res.Violation.Trace)
				fmt.Printf("  replay: rowtorture -replay '%s'\n", res.Violation.Spec)
				if worst < 1 {
					worst = 1
				}
			case res.Stats.Truncated:
				fmt.Printf("TRUNCATED %s: %d states visited (cap hit before exhaustion)\n", name, res.Stats.Visited)
				if worst < 2 {
					worst = 2
				}
			default:
				if !*quiet {
					fmt.Printf("ok   %s: %d states, %d transitions, depth %d, %s — all invariants hold\n",
						name, res.Stats.Visited, res.Stats.Transitions, res.Stats.MaxDepth,
						time.Since(start).Round(time.Millisecond))
				}
			}
			rep.Entries = append(rep.Entries, ent)
		}
	}

	if *benchJSON != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rowcheck: writing bench json:", err)
			return 2
		}
	}
	return worst
}

func pick(v, a, b string) ([]string, error) {
	switch v {
	case a:
		return []string{a}, nil
	case b:
		return []string{b}, nil
	case "both":
		return []string{a, b}, nil
	}
	return nil, fmt.Errorf("bad value %q (want %s, %s or both)", v, a, b)
}
