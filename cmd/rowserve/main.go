// Command rowserve is the simulation daemon: sweep specs in over
// HTTP/JSON, results out of a crash-safe, content-addressed batch
// queue.
//
//	rowserve -addr :8034 -journal queue.jsonl
//
//	curl -s -X POST localhost:8034/v1/sweeps \
//	  -H 'X-Tenant: alice' \
//	  -d '{"workload":"sps","param":"sharedfrac","values":[0.1,0.5,0.9]}'
//	curl -s localhost:8034/v1/sweeps/<id>/results
//	curl -s localhost:8034/v1/stats
//
// The journal IS the queue: every admitted sweep and every cell state
// transition is an appended record, so kill -9 at any point — mid
// journal append included — restarts into exactly the queue that was
// on disk: completed cells keep their results, unfinished ones re-run,
// and the final result set is byte-identical to an uninterrupted run
// (proven continuously by internal/serve/chaostest and the CI daemon
// smoke job). SIGTERM and SIGINT drain gracefully: admission stops,
// in-flight cells get -drain-grace to finish or are checkpointed as
// canceled, and the process exits 0 with a resumable queue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rowsim/internal/profiling"
	"rowsim/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8034", "listen address (host:port; port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the actual listen address to this file once serving (tests, scripts)")
		journal  = flag.String("journal", "rowserve.jsonl", "queue journal path (created if missing, recovered if present)")
		workers  = flag.Int("workers", 0, "worker pool size (<1 = GOMAXPROCS)")
		maxQueue = flag.Int("max-queue", 256, "total pending-cell bound; submissions over it get 429 + Retry-After")
		tenantQ  = flag.Int("tenant-queue", 0, "per-tenant pending-cell bound (<1 = max-queue/4, at least one full sweep)")
		timeout  = flag.Duration("timeout", 0, "per-attempt wall-clock deadline for one cell (0 = off)")
		retries  = flag.Int("retries", 3, "attempt budget per cell for transient failures (timeout, panic)")
		grace    = flag.Duration("drain-grace", 5*time.Second, "how long a drain waits for in-flight cells before checkpointing them")

		ckptEvery = flag.Uint64("checkpoint-every", 0, "write a durable per-cell checkpoint every N simulated cycles (0 = off); interrupted cells resume mid-run after crash or restart")
		ckptDir   = flag.String("checkpoint-dir", "", "per-cell checkpoint directory (default: <journal>.ckpt when -checkpoint-every is set)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	// SIGTERM (orchestrators) and SIGINT (Ctrl-C) both mean the same
	// thing here: drain gracefully, leave a resumable queue, exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := serve.Open(serve.Config{
		Journal:     *journal,
		Workers:     *workers,
		MaxQueue:    *maxQueue,
		TenantQueue: *tenantQ,
		RunTimeout:  *timeout,
		MaxAttempts: *retries,
		DrainGrace:  *grace,

		CheckpointEvery: *ckptEvery,
		CheckpointDir:   *ckptDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	fmt.Fprintf(os.Stderr, "rowserve: listening on %s, journal %s\n", ln.Addr(), *journal)

	hsrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hsrv.Serve(ln) }()

	// Run blocks until the signal context is done and the drain
	// finishes; then the HTTP listener gets a bounded shutdown so
	// in-flight responses complete.
	runErr := srv.Run(ctx)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hsrv.Shutdown(shutCtx)
	select {
	case err := <-httpErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	default:
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		return 1
	}
	fmt.Fprintln(os.Stderr, "rowserve: drained; queue is resumable at", *journal)
	return 0
}
