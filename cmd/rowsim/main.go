// Command rowsim runs one workload on the simulated multicore under a
// chosen atomic-execution policy and prints the run's metrics.
//
// Examples:
//
//	rowsim -workload pc -policy eager
//	rowsim -workload canneal -policy row -detect rwdir -pred ud
//	rowsim -workload sps -policy lazy -cores 16 -instrs 50000
package main

import (
	"flag"
	"fmt"
	"os"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "pc", "workload name (see -list)")
		policy  = flag.String("policy", "row", "atomic policy: eager, lazy, row, far")
		detect  = flag.String("detect", "rwdir", "contention detection: ew, rw, rwdir")
		pred    = flag.String("pred", "ud", "predictor: ud, sat, 2up1down")
		cores   = flag.Int("cores", 32, "number of cores")
		instrs  = flag.Int("instrs", 0, "instructions per core (0 = workload default)")
		seed    = flag.Uint64("seed", 1, "trace generation seed")
		schedF  = flag.String("sched", "event", "simulation scheduler: event (skip idle cycles) or cycle (tick every cycle); results are identical")
		fwd     = flag.Bool("fwd", true, "enable store-to-atomic forwarding")
		list    = flag.Bool("list", false, "list workloads and exit")
		verbose = flag.Bool("v", false, "print extended statistics")
		perCore = flag.Bool("percore", false, "print a per-core breakdown table")
		traceIn = flag.String("tracefile", "", "replay a trace file (from rowtrace -save) instead of generating")
	)
	flag.Parse()

	sched, err := sim.ParseScheduler(*schedF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *list {
		for _, n := range workload.Names() {
			p := workload.MustGet(n)
			fmt.Printf("%-14s %5.1f atomics/10k  %s\n", n, p.AtomicsPer10K, p.Descr)
		}
		return
	}

	cfg := config.Default()
	cfg.NumCores = *cores
	cfg.ForwardAtomics = *fwd
	switch *policy {
	case "eager":
		cfg.Policy = config.PolicyEager
	case "lazy":
		cfg.Policy = config.PolicyLazy
	case "row":
		cfg.Policy = config.PolicyRoW
	case "far":
		cfg.Policy = config.PolicyFar
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}
	switch *detect {
	case "ew":
		cfg.RoW.Detection = config.DetectEW
	case "rw":
		cfg.RoW.Detection = config.DetectRW
	case "rwdir":
		cfg.RoW.Detection = config.DetectRWDir
	default:
		fmt.Fprintf(os.Stderr, "unknown detection %q\n", *detect)
		os.Exit(2)
	}
	switch *pred {
	case "ud":
		cfg.RoW.Predictor = config.PredUpDown
	case "sat":
		cfg.RoW.Predictor = config.PredSaturate
	case "2up1down":
		cfg.RoW.Predictor = config.PredTwoUpOneDown
	default:
		fmt.Fprintf(os.Stderr, "unknown predictor %q\n", *pred)
		os.Exit(2)
	}

	// The early address-calculation pass is a RoW mechanism (it opens
	// the ready window); the plain baselines and the EW variant do
	// without it, as in the paper.
	cfg.EarlyAddrCalc = cfg.Policy == config.PolicyRoW && cfg.RoW.Detection != config.DetectEW

	p, err := workload.Get(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var progs []trace.Program
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		progs, err = trace.ReadPrograms(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(progs) > *cores {
			cfg.NumCores = len(progs)
		}
	} else {
		progs = workload.Generate(p, *cores, *instrs, *seed)
	}
	system, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(p)), sim.WithScheduler(sched))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r, err := system.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload        %s (%s)\n", p.Name, p.Descr)
	fmt.Printf("policy          %s  detect=%s pred=%s fwd=%v\n", cfg.Policy, cfg.RoW.Detection, cfg.RoW.Predictor, *fwd)
	fmt.Printf("cycles          %d\n", r.Cycles)
	fmt.Printf("committed       %d (IPC %.2f)\n", r.Committed, r.IPC)
	fmt.Printf("atomics         %d (%.1f per 10k, %.1f%% contended)\n", r.Atomics, r.AtomicsPer10K, r.ContendedFrac*100)
	fmt.Printf("issued          eager=%d lazy=%d forwarded=%d\n", r.EagerIssued, r.LazyIssued, r.ForwardedAtomics)
	fmt.Printf("atomic latency  dispatch->issue %.0f, issue->lock %.0f, lock->unlock %.0f\n",
		r.DispatchToIssue, r.IssueToLock, r.LockToUnlock)
	fmt.Printf("L1D miss lat    %.0f cycles\n", r.MissLatency)
	if cfg.Policy == config.PolicyRoW {
		fmt.Printf("pred accuracy   %.1f%%\n", r.PredAccuracy*100)
	}
	if *perCore {
		t := &stats.Table{
			Title:   "Per-core breakdown",
			Headers: []string{"core", "finished@", "committed", "atomics", "contended", "squashes", "L1Imiss", "missLat"},
		}
		for i, c := range system.Cores() {
			pc := system.Caches()[i]
			t.AddRow(
				fmt.Sprint(i),
				fmt.Sprint(c.FinishedAt()),
				fmt.Sprint(c.Stats.Committed),
				fmt.Sprint(c.Stats.Atomics),
				fmt.Sprint(c.Stats.ContendedAtomics),
				fmt.Sprint(c.Stats.LQSquashes),
				fmt.Sprint(c.L1IMisses()),
				stats.F1(pc.Stats.MissLatency.Value()),
			)
		}
		fmt.Println(t)
	}
	if *verbose {
		// Scheduler bookkeeping stays out of the default output so the
		// CI mode-equivalence diff compares runs across -sched values.
		skip := 0.0
		if r.Cycles > 0 {
			skip = 1 - float64(r.CyclesVisited)/float64(r.Cycles)
		}
		fmt.Printf("sched           %s (visited %d of %d cycles, %.1f%% skipped)\n", sched, r.CyclesVisited, r.Cycles, skip*100)
		fmt.Printf("older-unexec@eager   %.1f\n", r.OlderUnexecAtEager)
		fmt.Printf("younger-started@lazy %.1f\n", r.YoungerStartedAtLazy)
		fmt.Printf("load forwards   %d\n", r.LoadForwards)
		fmt.Printf("LQ squashes     %d\n", r.LQSquashes)
		fmt.Printf("SS violations   %d\n", r.SSViolations)
		fmt.Printf("forced releases %d\n", r.ForcedReleases)
		fmt.Printf("branches        %d (%.2f%% mispredicted)\n", r.Branches, pct(r.Mispredicts, r.Branches))
		fmt.Printf("ext stalls      %d\n", r.ExtStalls)
		fmt.Printf("net messages    %d\n", r.NetworkMessages)
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
