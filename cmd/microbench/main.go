// Command microbench reproduces Figure 2 of the paper: the Section
// II-A microbenchmark measuring cycles per iteration of atomic and
// non-atomic RMW instructions, with and without explicit memory
// fences, on a modern (unfenced-atomics) and a 2007-class (fenced-
// atomics) simulated core.
//
//	microbench -iters 20000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rowsim/internal/experiments"
	"rowsim/internal/lifecycle"
)

func main() {
	os.Exit(run())
}

// run executes the microbenchmark under the lifecycle supervisor, so
// SIGINT stops the in-flight simulation cleanly and a contained panic
// or timeout surfaces as a structured error (see cmd/rowbench).
func run() (code int) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		err, ok := p.(error)
		if !ok {
			panic(p)
		}
		fmt.Fprintln(os.Stderr, err)
		if lifecycle.Classify(err) == lifecycle.ClassCanceled {
			code = 130
			return
		}
		code = 1
	}()
	var (
		iters   = flag.Int("iters", 8000, "iterations per variant")
		seed    = flag.Uint64("seed", 1, "address-stream seed (0 selects the documented default seed)")
		timeout = flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = off); timed-out runs retry")
	)
	flag.Parse()

	// os.Interrupt covers Ctrl-C; SIGTERM is what containers and
	// orchestrators send — both get the same graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := experiments.NewRunner(experiments.Options{
		Cores:  1,
		Instrs: *iters * 4, // Fig2 derives its iteration count from this
		Seed:   *seed,
	})
	r.SetContext(ctx)
	r.Supervise(lifecycle.New(lifecycle.Config{RunTimeout: *timeout, JitterSeed: r.Options().Seed}))
	r.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	fmt.Println(experiments.Fig2(r))
	return 0
}
