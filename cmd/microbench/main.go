// Command microbench reproduces Figure 2 of the paper: the Section
// II-A microbenchmark measuring cycles per iteration of atomic and
// non-atomic RMW instructions, with and without explicit memory
// fences, on a modern (unfenced-atomics) and a 2007-class (fenced-
// atomics) simulated core.
//
//	microbench -iters 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"rowsim/internal/experiments"
)

func main() {
	var (
		iters = flag.Int("iters", 8000, "iterations per variant")
		seed  = flag.Uint64("seed", 1, "address-stream seed")
	)
	flag.Parse()

	r := experiments.NewRunner(experiments.Options{
		Cores:  1,
		Instrs: *iters * 4, // Fig2 derives its iteration count from this
		Seed:   *seed,
	})
	r.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	fmt.Println(experiments.Fig2(r))
}
