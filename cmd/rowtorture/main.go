// Command rowtorture runs the randomized protocol torture sweep, or
// reproduces a single failing run from its printed seed line.
//
// Sweep mode (the default):
//
//	rowtorture -n 200 -seed 7 -workers 8
//
// runs 200 randomized (seed × workload × variant × fault-config)
// simulations, verifying the coherence invariants during each run and
// replaying a sample for byte-identical determinism. Every failure is
// printed as a one-line re-runnable reproduction.
//
// Reproduction mode (triggered by -wl):
//
//	rowtorture -seed 0x3a41 -wl cq -variant "RW+Dir_Sat" -cores 8 -instrs 2500 -faults "jitter=0.5:16"
//
// re-executes exactly that run and prints its outcome.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rowsim/internal/faults"
	"rowsim/internal/torture"
)

func main() {
	var (
		n       = flag.Int("n", 100, "sweep: number of randomized configs")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 1, "sweep master seed, or the trace seed in repro mode")
		wl      = flag.String("wl", "", "repro mode: workload name (enables repro mode)")
		variant = flag.String("variant", "Eager", "repro mode: variant name")
		cores   = flag.String("cores", "4,8", "core-count choices (sweep) or the core count (repro)")
		instrs  = flag.String("instrs", "1000,2500", "per-core instruction choices (sweep) or the count (repro)")
		spec    = flag.String("faults", "none", "repro mode: fault spec, e.g. jitter=0.5:16,reorder=0.05:64")
		replay  = flag.Int("replay-every", 5, "replay every Nth run for determinism (0 = off)")
		check   = flag.Uint64("check-every", 4096, "coherence-invariant check interval in cycles (0 = off)")
		budget  = flag.Uint64("max-cycles", 20_000_000, "per-run cycle budget")
		verbose = flag.Bool("v", false, "print a line per run")
	)
	flag.Parse()

	if *wl != "" {
		os.Exit(repro(*seed, *wl, *variant, *cores, *instrs, *spec, *check, *budget))
	}

	opt := torture.Options{
		Runs:        *n,
		Workers:     *workers,
		Seed:        *seed,
		Cores:       parseInts(*cores),
		Instrs:      parseInts(*instrs),
		ReplayEvery: *replay,
		CheckEvery:  *check,
		MaxCycles:   *budget,
	}
	if *verbose {
		opt.Progress = func(msg string) { fmt.Println(msg) }
	}
	sum := torture.Torture(opt)
	fmt.Println(sum)
	if !sum.OK() {
		os.Exit(1)
	}
}

// repro re-executes one run and reports its outcome; the exit code is
// 0 only when the run completes cleanly.
func repro(seed uint64, wl, variant, coresStr, instrsStr, spec string, check, budget uint64) int {
	fc, err := faults.ParseSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rs := torture.RunSpec{
		Seed:       seed,
		Workload:   wl,
		Variant:    variant,
		Cores:      one(coresStr),
		Instrs:     one(instrsStr),
		Faults:     fc,
		CheckEvery: check,
		MaxCycles:  budget,
	}
	fmt.Println(rs.ReproLine())
	res, err := torture.Execute(rs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL [%s]\n%v\n", torture.Classify(err), err)
		return 1
	}
	fmt.Printf("ok: %d cycles, %d committed, IPC %.2f, %d network messages\n",
		res.Cycles, res.Committed, res.IPC, res.NetworkMessages)
	return 0
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer list %q: %v\n", s, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// one parses a single integer flag that shares syntax with a list.
func one(s string) int {
	vs := parseInts(s)
	if len(vs) != 1 {
		fmt.Fprintf(os.Stderr, "repro mode wants a single value, got %q\n", s)
		os.Exit(2)
	}
	return vs[0]
}
