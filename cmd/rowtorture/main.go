// Command rowtorture runs the randomized protocol torture sweep, or
// reproduces a single failing run from its printed seed line.
//
// Sweep mode (the default):
//
//	rowtorture -n 200 -seed 7 -workers 8
//
// runs 200 randomized (seed × workload × variant × fault-config)
// simulations, verifying the coherence invariants during each run and
// replaying a sample for byte-identical determinism. Every failure is
// printed as a one-line re-runnable reproduction.
//
// The sweep runs supervised: -timeout bounds one run's wall-clock
// time, -deadline the whole sweep's, and -journal streams outcomes to
// a crash-safe JSONL log. SIGINT drains in-flight runs into the
// journal; an interrupted (or SIGKILLed) sweep continues with
//
//	rowtorture -resume torture.jsonl
//
// which re-reads the sweep definition from the journal's meta record
// and re-runs only the specs that did not complete successfully.
//
// Reproduction mode (triggered by -wl):
//
//	rowtorture -seed 0x3a41 -wl cq -variant "RW+Dir_Sat" -cores 8 -instrs 2500 -faults "jitter=0.5:16"
//
// re-executes exactly that run and prints its outcome.
//
// Witness-replay mode (triggered by -replay) re-executes a one-line
// counterexample emitted by the rowcheck model checker against the
// real component stack and reports whether the invariant violation
// reproduces:
//
//	rowtorture -replay 'mcheck v1 cores=2 lines=1 banks=1 mode=eager net=fifo bug=getx-as-gets prog=... trace=...'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"rowsim/internal/faults"
	"rowsim/internal/lifecycle"
	"rowsim/internal/mcheck"
	"rowsim/internal/sim"
	"rowsim/internal/torture"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n       = flag.Int("n", 100, "sweep: number of randomized configs")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 1, "sweep master seed, or the trace seed in repro mode")
		wl      = flag.String("wl", "", "repro mode: workload name (enables repro mode)")
		variant = flag.String("variant", "Eager", "repro mode: variant name")
		cores   = flag.String("cores", "4,8", "core-count choices (sweep) or the core count (repro)")
		instrs  = flag.String("instrs", "1000,2500", "per-core instruction choices (sweep) or the count (repro)")
		spec    = flag.String("faults", "none", "repro mode: fault spec, e.g. jitter=0.5:16,reorder=0.05:64")
		replay  = flag.Int("replay-every", 5, "replay every Nth run for determinism (0 = off)")
		check   = flag.Uint64("check-every", 4096, "coherence-invariant check interval in cycles (0 = off)")
		budget  = flag.Uint64("max-cycles", 20_000_000, "per-run cycle budget (simulated cycles)")
		schedF  = flag.String("sched", "event", "scheduler for primary runs: event or cycle; determinism replays run under the opposite one")
		journal = flag.String("journal", "", "write a crash-safe JSONL run journal to this path")
		resume  = flag.String("resume", "", "resume an interrupted sweep from its journal")
		timeout = flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = off); timed-out runs retry")
		deadlin = flag.Duration("deadline", 0, "whole-sweep wall-clock deadline (0 = off)")
		retries = flag.Int("retries", 1, "attempt budget per run for transient failures (timeout, panic)")
		verbose = flag.Bool("v", false, "print a line per run")
		witness = flag.String("replay", "", "replay a rowcheck witness spec (mcheck v1 ...)")

		ckptEvery  = flag.Uint64("checkpoint-every", 0, "write a durable per-run checkpoint every N simulated cycles (0 = off); interrupted or retried runs resume from it")
		resumeFrom = flag.String("resume-from", "", "directory holding mid-run checkpoints from a previous invocation (default: derived from the journal path when -checkpoint-every is set)")
	)
	flag.Parse()

	sched, serr := sim.ParseScheduler(*schedF)
	if serr != nil {
		fmt.Fprintln(os.Stderr, serr)
		return 2
	}

	if *witness != "" {
		return replayWitness(*witness)
	}
	if *wl != "" {
		return repro(*seed, *wl, *variant, *cores, *instrs, *spec, *check, *budget, sched)
	}

	// os.Interrupt covers Ctrl-C; SIGTERM is what containers and
	// orchestrators send — both get the same graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadlin > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadlin)
		defer cancel()
	}

	var (
		jnl  *lifecycle.Journal
		snap *lifecycle.Snapshot
		err  error
	)
	switch {
	case *resume != "":
		jnl, snap, err = lifecycle.Resume(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Refuse a journal whose meta record no longer hashes to its
		// recorded sweep definition (edited or produced elsewhere).
		if cerr := snap.CheckSpec(*resume); cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			return 2
		}
		a := snap.Meta.Args
		*n = atoi(a["n"])
		s, perr := strconv.ParseUint(a["seed"], 10, 64)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "corrupt journal meta: bad seed %q\n", a["seed"])
			return 2
		}
		*seed = s
		*cores, *instrs = a["cores"], a["instrs"]
		*replay = atoi(a["replay-every"])
		*check = uint64(atoi(a["check-every"]))
		*budget = uint64(atoi(a["max-cycles"]))
		// Journals from before the event scheduler have no "sched" key;
		// the scheduler does not change results, so those resume under
		// the flag's (default) mode.
		if v, ok := a["sched"]; ok {
			sched, serr = sim.ParseScheduler(v)
			if serr != nil {
				fmt.Fprintf(os.Stderr, "corrupt journal meta: bad sched %q\n", v)
				return 2
			}
		}
	case *journal != "":
		jnl, err = lifecycle.Create(*journal, lifecycle.Record{
			Tool: "rowtorture",
			Args: map[string]string{
				"n":            strconv.Itoa(*n),
				"seed":         strconv.FormatUint(*seed, 10),
				"cores":        *cores,
				"instrs":       *instrs,
				"replay-every": strconv.Itoa(*replay),
				"check-every":  strconv.FormatUint(*check, 10),
				"max-cycles":   strconv.FormatUint(*budget, 10),
				"sched":        sched.String(),
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	// Checkpoints live one file per run spec under a sweep-scoped
	// directory; -resume-from names it explicitly, otherwise it is
	// derived from the journal path so interrupt-then-resume finds the
	// checkpoints without extra flags.
	ckptDir := *resumeFrom
	if ckptDir == "" && *ckptEvery > 0 {
		switch {
		case *resume != "":
			ckptDir = *resume + ".ckpt"
		case *journal != "":
			ckptDir = *journal + ".ckpt"
		default:
			ckptDir = "rowtorture.ckpt"
		}
	}
	if ckptDir != "" {
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	opt := torture.Options{
		Runs:            *n,
		Workers:         *workers,
		Seed:            *seed,
		Sched:           sched,
		Cores:           parseInts(*cores),
		Instrs:          parseInts(*instrs),
		ReplayEvery:     *replay,
		CheckEvery:      *check,
		MaxCycles:       *budget,
		Ctx:             ctx,
		RunTimeout:      *timeout,
		MaxAttempts:     *retries,
		Journal:         jnl,
		Resume:          snap,
		CheckpointDir:   ckptDir,
		CheckpointEvery: *ckptEvery,
	}
	if *verbose {
		opt.Progress = func(msg string) { fmt.Println(msg) }
	}
	sum := torture.Torture(opt)
	fmt.Println(sum)
	if jerr := closeJournal(jnl); jerr != 0 {
		return jerr
	}
	if !sum.OK() {
		return 1
	}
	if sum.Canceled > 0 {
		hint := ""
		if jnl != nil {
			hint = fmt.Sprintf(" — resume with: rowtorture -resume %s", jnl.Path())
		}
		fmt.Fprintf(os.Stderr, "sweep interrupted%s\n", hint)
		return 130
	}
	return 0
}

// repro re-executes one run and reports its outcome; the exit code is
// 0 only when the run completes cleanly.
func repro(seed uint64, wl, variant, coresStr, instrsStr, spec string, check, budget uint64, sched sim.Scheduler) int {
	fc, err := faults.ParseSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rs := torture.RunSpec{
		Seed:       seed,
		Workload:   wl,
		Variant:    variant,
		Cores:      one(coresStr),
		Instrs:     one(instrsStr),
		Faults:     fc,
		CheckEvery: check,
		MaxCycles:  budget,
		Sched:      sched,
	}
	fmt.Println(rs.ReproLine())
	res, err := torture.Execute(rs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL [%s]\n%v\n", torture.Classify(err), err)
		return 1
	}
	fmt.Printf("ok: %d cycles, %d committed, IPC %.2f, %d network messages\n",
		res.Cycles, res.Committed, res.IPC, res.NetworkMessages)
	return 0
}

// replayWitness strictly re-executes a rowcheck counterexample. Exit 1
// when the violation reproduces (the expected outcome for a live bug),
// 0 when the trace replays cleanly (the bug is fixed), 2 on a spec that
// no longer applies.
func replayWitness(spec string) int {
	res, err := mcheck.Replay(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if v := res.Violation; v != nil {
		fmt.Printf("reproduced [%s] after %d choices: %s\n", torture.Classify(v), len(v.Trace), v.Detail)
		return 1
	}
	fmt.Printf("ok: witness replayed cleanly (%d choices) — violation not reproduced\n", res.Stats.Transitions)
	return 0
}

func closeJournal(j *lifecycle.Journal) int {
	if j == nil {
		return 0
	}
	if err := j.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "journal error: %v\n", err)
		return 1
	}
	return 0
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer list %q: %v\n", s, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func atoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corrupt journal meta: bad integer %q\n", s)
		os.Exit(2)
	}
	return v
}

// one parses a single integer flag that shares syntax with a list.
func one(s string) int {
	vs := parseInts(s)
	if len(vs) != 1 {
		fmt.Fprintf(os.Stderr, "repro mode wants a single value, got %q\n", s)
		os.Exit(2)
	}
	return vs[0]
}
