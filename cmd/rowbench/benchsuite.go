package main

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"rowsim/internal/bench"
	"rowsim/internal/experiments"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
)

// benchSuite is the figure benchmark set the regression gate measures:
// the same figures bench_test.go exercises, at the same laptop scale
// (8 cores, short traces, one contended and one non-contended
// workload), so a JSON report takes seconds, not the minutes of a
// full-scale regeneration.
var benchSuite = []struct {
	name string
	run  func(r *experiments.Runner) *stats.Table
}{
	{"Fig1EagerVsLazy", experiments.Fig1},
	{"Fig4IndependentInstrs", experiments.Fig4},
	{"Fig5AtomicIntensity", experiments.Fig5},
	{"Fig6LatencyBreakdown", experiments.Fig6},
	{"Fig9RoWVariants", experiments.Fig9},
	{"Fig10ThresholdSweep", experiments.Fig10},
	{"Fig11MissLatency", experiments.Fig11},
	{"Fig12PredictorAccuracy", experiments.Fig12},
	{"Fig13Forwarding", experiments.Fig13},
}

// benchSuiteOptions mirrors bench_test.go's benchOptions.
func benchSuiteOptions(sched sim.Scheduler) experiments.Options {
	return experiments.Options{
		Cores:     8,
		Instrs:    3000,
		Seed:      1,
		Workloads: []string{"canneal", "sps"},
		Sched:     sched,
	}
}

// benchReps is how many times each figure is measured; the report
// keeps the fastest repetition. Wall time on a shared host is
// one-sided noise (scheduling and page-cache stalls only ever add
// time), so min-of-N is the stable estimator — single-shot numbers
// jitter enough to trip a 25% gate on their own.
const benchReps = 3

// runBenchSuite measures every suite figure on a fresh memo (wall
// time, simulated-cycle throughput, allocations), writes the JSON
// report, and — when a baseline is given — fails on wall-time
// regressions beyond maxRegress.
func runBenchSuite(outPath, basePath string, maxRegress float64, jobs int, quiet bool, sched sim.Scheduler) int {
	rep := bench.New(gitRev(), experiments.Jobs(jobs))
	for _, fb := range benchSuite {
		var e bench.Entry
		for i := 0; i < benchReps; i++ {
			// A fresh runner per repetition keeps the memo cold: each
			// measurement is the figure's full simulation cost, not
			// whatever a previous pass happened to share.
			r := experiments.NewRunner(benchSuiteOptions(sched))
			r.SetJobs(jobs)
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			fb.run(r)
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			if i > 0 && wall.Nanoseconds() >= e.WallNS {
				continue
			}
			cycles := r.SimulatedCycles()
			visited := r.VisitedCycles()
			e = bench.Entry{
				Name:          fb.name,
				WallNS:        wall.Nanoseconds(),
				Cycles:        cycles,
				CyclesVisited: visited,
				Allocs:        after.Mallocs - before.Mallocs,
				Bytes:         after.TotalAlloc - before.TotalAlloc,
			}
			if sec := wall.Seconds(); sec > 0 {
				e.CyclesPerSec = float64(cycles) / sec
			}
			if cycles > 0 {
				e.SkipEff = 1 - float64(visited)/float64(cycles)
			}
		}
		rep.Entries = append(rep.Entries, e)
		if !quiet {
			fmt.Fprintf(os.Stderr, "%-24s %10.1fms %12.0f cycles/s %5.1f%% skipped %10d allocs\n",
				fb.name, float64(e.WallNS)/1e6, e.CyclesPerSec, e.SkipEff*100, e.Allocs)
		}
	}
	if err := bench.Write(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wrote %s (rev %s, jobs %d)\n", outPath, rep.Rev, rep.Jobs)
	}
	if basePath == "" {
		return 0
	}
	base, err := bench.Read(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	msgs, ok := bench.Compare(base, rep, maxRegress)
	for _, m := range msgs {
		fmt.Fprintln(os.Stderr, m)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchmark gate FAILED against %s\n", basePath)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchmark gate passed against %s\n", basePath)
	return 0
}

// gitRev tags the report with the current short revision; outside a
// git checkout the tag degrades to "unknown".
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
