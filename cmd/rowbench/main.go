// Command rowbench regenerates the paper's tables and figures as text
// tables.
//
// Examples:
//
//	rowbench -fig 1            # Fig. 1: eager vs lazy
//	rowbench -fig 9            # Fig. 9: RoW variants
//	rowbench -table 1          # Table I: system parameters
//	rowbench -summary          # Section VI headline numbers
//	rowbench -ablation entries # predictor-size ablation
//	rowbench -all              # everything (long)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rowsim/internal/experiments"
	"rowsim/internal/lifecycle"
	"rowsim/internal/profiling"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
	"rowsim/internal/viz"
	"rowsim/internal/workload"
)

func main() {
	os.Exit(run())
}

// run executes the figure harness under the lifecycle supervisor:
// SIGINT cancels the in-flight simulation at its next poll, panics
// are contained per run and retried, and a failed or interrupted
// figure exits with a structured report instead of a raw panic (the
// figure code itself still uses the MustRun convention, so the typed
// error arrives here as a panic payload).
func run() (code int) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		err, ok := p.(error)
		if !ok {
			panic(p) // a real bug, not a run failure: keep the crash
		}
		fmt.Fprintln(os.Stderr, err)
		if lifecycle.Classify(err) == lifecycle.ClassCanceled {
			code = 130
			return
		}
		code = 1
	}()
	var (
		fig       = flag.Int("fig", 0, "figure number to regenerate (1,2,4,5,6,8,9,10,11,12,13)")
		table     = flag.Int("table", 0, "table to regenerate (1 = system params, 2 = RoW hardware cost)")
		summary   = flag.Bool("summary", false, "print the Section VI headline summary")
		ablation  = flag.String("ablation", "", "ablation to run: entries, update, aq")
		scaling   = flag.Bool("scaling", false, "core-count scaling sweep")
		far       = flag.Bool("far", false, "far-vs-near atomics comparison")
		locks     = flag.Bool("locks", false, "synchronization-kernel study (tas/ticket/barrier)")
		stability = flag.Bool("stability", false, "multi-seed stability check")
		format    = flag.String("format", "text", "output format: text, csv, chart")
		all       = flag.Bool("all", false, "regenerate everything")
		cores     = flag.Int("cores", 32, "number of cores")
		instrs    = flag.Int("instrs", 0, "instructions per core (0 = experiment default)")
		seed      = flag.Uint64("seed", 1, "trace seed (0 selects the documented default seed)")
		wls       = flag.String("workloads", "", "comma-separated workload subset (default: the 13 atomic-intensive)")
		timeout   = flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = off); timed-out runs retry")
		quiet     = flag.Bool("q", false, "suppress per-run progress")
		jobs      = flag.Int("jobs", 0, "parallel simulation workers for figure sweeps (<1 = GOMAXPROCS); output is identical for any value")
		schedFlag = flag.String("sched", "event", "simulation scheduler: event (skip idle cycles) or cycle (tick every cycle); results are identical")

		benchJSON  = flag.String("bench-json", "", "run the figure benchmark suite and write a JSON report to this path")
		benchBase  = flag.String("bench-baseline", "", "with -bench-json: compare against this baseline report and fail on regression")
		maxRegress = flag.Float64("max-regress", 0.25, "wall-time regression tolerated by -bench-baseline (0.25 = +25%)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	sched, err := sim.ParseScheduler(*schedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *benchJSON != "" {
		return runBenchSuite(*benchJSON, *benchBase, *maxRegress, *jobs, *quiet, sched)
	}

	// os.Interrupt covers Ctrl-C; SIGTERM is what containers and
	// orchestrators send — both get the same graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := experiments.Options{Cores: *cores, Instrs: *instrs, Seed: *seed, Sched: sched}
	if *wls != "" {
		opt.Workloads = strings.Split(*wls, ",")
		for _, w := range opt.Workloads {
			if _, err := workload.Get(w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	r := experiments.NewRunner(opt)
	r.SetJobs(*jobs)
	r.SetContext(ctx)
	r.Supervise(lifecycle.New(lifecycle.Config{RunTimeout: *timeout, JitterSeed: r.Options().Seed}))
	if !*quiet {
		r.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	show := func(t *stats.Table) {
		switch *format {
		case "csv":
			fmt.Print(t.CSV())
		case "chart":
			fmt.Println(t)
			if len(t.Headers) > 1 {
				if c := viz.NormChart(t, len(t.Headers)-1, 50); c != "" {
					fmt.Println(c)
				}
			}
		default:
			fmt.Println(t)
		}
		fmt.Println()
	}
	start := time.Now()
	ran := false
	runFig := func(n int) {
		ran = true
		switch n {
		case 1:
			show(experiments.Fig1(r))
		case 2:
			show(experiments.Fig2(r))
		case 4:
			show(experiments.Fig4(r))
		case 5:
			show(experiments.Fig5(r))
		case 6:
			show(experiments.Fig6(r))
		case 8:
			show(experiments.Fig8Race(r))
			show(experiments.LockTails(r))
		case 9:
			show(experiments.Fig9(r))
		case 10:
			show(experiments.Fig10(r))
		case 11:
			show(experiments.Fig11(r))
		case 12:
			show(experiments.Fig12(r))
		case 13:
			show(experiments.Fig13(r))
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %d\n", n)
			os.Exit(2)
		}
	}

	if *all {
		show(experiments.Table1())
		for _, n := range []int{1, 2, 4, 5, 6, 8, 9, 10, 11, 12, 13} {
			runFig(n)
		}
		show(experiments.Summary(r))
		show(experiments.FarVsNear(r))
		show(experiments.AblationEntries(r))
		show(experiments.AblationUpdate(r))
		show(experiments.AblationAQSize(r))
	} else {
		if *fig != 0 {
			runFig(*fig)
		}
		if *table == 1 {
			ran = true
			show(experiments.Table1())
		}
		if *table == 2 {
			ran = true
			show(experiments.HardwareCost())
		}
		if *summary {
			ran = true
			show(experiments.Summary(r))
		}
		if *scaling {
			ran = true
			show(experiments.Scaling(r, opt.Workloads))
		}
		if *far {
			ran = true
			show(experiments.FarVsNear(r))
		}
		if *locks {
			ran = true
			show(experiments.LockStudy(r))
		}
		if *stability {
			ran = true
			show(experiments.Stability(r, nil, opt.Workloads))
		}
		switch *ablation {
		case "":
		case "entries":
			ran = true
			show(experiments.AblationEntries(r))
		case "update":
			ran = true
			show(experiments.AblationUpdate(r))
		case "aq":
			ran = true
			show(experiments.AblationAQSize(r))
		default:
			fmt.Fprintf(os.Stderr, "unknown ablation %q (entries, update, aq)\n", *ablation)
			os.Exit(2)
		}
		if !ran {
			flag.Usage()
			os.Exit(2)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	}
	return 0
}
