// Command rowtrace inspects the synthetic instruction traces the
// workload generators produce: dump instructions, summarize the
// instruction mix, or break accesses down by address region.
//
//	rowtrace -workload pc -n 40          # dump the first 40 instructions
//	rowtrace -workload pc -summary       # mix + intensity + regions
package main

import (
	"flag"
	"fmt"
	"os"

	"rowsim/internal/stats"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

// Address-region boundaries (mirrors the workload generator layout).
const (
	hotBase     = 0x1000_0000
	metaBase    = 0x1400_0000
	sharedBase  = 0x1800_0000
	privateBase = 0x4000_0000
)

func region(addr uint64) string {
	switch {
	case addr >= privateBase:
		return "private"
	case addr >= sharedBase:
		return "shared-payload"
	case addr >= metaBase:
		return "shared-metadata"
	case addr >= hotBase:
		return "hot-atomic"
	default:
		return "other"
	}
}

func main() {
	var (
		name    = flag.String("workload", "pc", "workload name")
		core    = flag.Int("core", 0, "core whose trace to inspect")
		cores   = flag.Int("cores", 32, "number of cores to generate")
		n       = flag.Int("n", 0, "dump the first N instructions")
		instrs  = flag.Int("instrs", 0, "trace length (0 = workload default)")
		seed    = flag.Uint64("seed", 1, "generation seed")
		summary = flag.Bool("summary", false, "print the composition summary")
		save    = flag.String("save", "", "write all cores' traces to this file (replay with rowsim -tracefile)")
	)
	flag.Parse()

	p, err := workload.Get(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	progs := workload.Generate(p, *cores, *instrs, *seed)
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.WritePrograms(f, progs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d cores to %s\n", len(progs), *save)
	}
	if *core < 0 || *core >= len(progs) {
		fmt.Fprintf(os.Stderr, "core %d out of range [0,%d)\n", *core, len(progs))
		os.Exit(2)
	}
	prog := progs[*core]

	if *n > 0 {
		limit := *n
		if limit > len(prog) {
			limit = len(prog)
		}
		for i := 0; i < limit; i++ {
			in := &prog[i]
			extra := ""
			if in.IsMem() {
				extra = "  [" + region(in.Addr) + "]"
			}
			fmt.Printf("%6d  %s%s\n", i, in, extra)
		}
		if !*summary {
			return
		}
		fmt.Println()
	}

	s := prog.Summarize()
	t := &stats.Table{
		Title:   fmt.Sprintf("%s (core %d): %s", p.Name, *core, p.Descr),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("instructions", fmt.Sprint(s.Total))
	t.AddRow("loads", fmt.Sprintf("%d (%.1f%%)", s.Loads, pct(s.Loads, s.Total)))
	t.AddRow("stores", fmt.Sprintf("%d (%.1f%%)", s.Stores, pct(s.Stores, s.Total)))
	t.AddRow("branches", fmt.Sprintf("%d (%.1f%%)", s.Branches, pct(s.Branches, s.Total)))
	t.AddRow("atomics", fmt.Sprintf("%d (%.1f per 10k)", s.Atomics, prog.AtomicsPer10K()))
	t.AddRow("fences", fmt.Sprint(s.Fences))

	regions := map[string]int{}
	atomicRegions := map[string]int{}
	lines := map[uint64]bool{}
	for i := range prog {
		in := &prog[i]
		if !in.IsMem() {
			continue
		}
		regions[region(in.Addr)]++
		lines[in.Addr&^63] = true
		if in.Kind == trace.Atomic {
			atomicRegions[region(in.Addr)]++
		}
	}
	t.AddRow("distinct lines", fmt.Sprint(len(lines)))
	for _, r := range []string{"hot-atomic", "shared-metadata", "shared-payload", "private"} {
		t.AddRow("accesses to "+r, fmt.Sprint(regions[r]))
	}
	for _, r := range []string{"hot-atomic", "private"} {
		t.AddRow("atomics to "+r, fmt.Sprint(atomicRegions[r]))
	}
	fmt.Println(t)
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
